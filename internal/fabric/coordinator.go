package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"ilplimit/internal/harness"
	"ilplimit/internal/journal"
	"ilplimit/internal/telemetry"
)

// RemoteError is a cell failure reported by a worker.  It satisfies the
// harness retry policy's `Retryable() bool` hook, so a remote failure is
// retried (or not) exactly as the worker that saw the original error
// classified it.
type RemoteError struct {
	// Bench is the failing cell's benchmark.
	Bench string
	// Worker identifies the worker that reported the failure.
	Worker string
	// Msg is the worker's rendered error message.
	Msg string
	// Transient records the worker-side harness.Retryable verdict.
	Transient bool
}

// Error renders the failure with its origin worker.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("%s: worker %s: %s", e.Bench, e.Worker, e.Msg)
}

// Retryable reports the worker-side transient/deterministic verdict.
func (e *RemoteError) Retryable() bool { return e.Transient }

// fabricCanceled marks a coordinator-side cancellation: deterministic
// (never retried), like local vm.ErrCanceled failures.
type fabricCanceled struct {
	bench string
	err   error
}

func (e *fabricCanceled) Error() string {
	return fmt.Sprintf("%s: fabric run canceled (%v)", e.bench, e.err)
}
func (e *fabricCanceled) Retryable() bool { return false }
func (e *fabricCanceled) Unwrap() error   { return e.err }

// CoordinatorOptions configure a Coordinator.
type CoordinatorOptions struct {
	// LeaseTTL is how long a granted cell survives without a heartbeat
	// before it is revoked and requeued (default 10s).  The expiry scan
	// runs at TTL/4 granularity, mirroring the replay ring's stall
	// watchdog.
	LeaseTTL time.Duration
	// Watchdog propagates harness.Options.Watchdog to workers.
	Watchdog time.Duration
	// Metrics, when non-nil, records fabric counters (leases, requeues,
	// stale completions, per-worker cells) and merges the per-cell
	// telemetry workers attach to completions.  Non-nil also asks
	// workers to capture that telemetry at all.
	Metrics *telemetry.Registry
	// Progress, when non-nil, receives one line per fabric event
	// (lease, completion, requeue); writes are serialized internally.
	Progress io.Writer
	// Recovery, when non-nil, is the coordinator's crash-recovery
	// journal (a journal.OpenNamed file beside the run journal, never
	// the run journal itself).  Every lease grant and admitted
	// completion is persisted to it before being revealed, and a
	// coordinator built over a journal with salvaged records
	// reconstructs the lease table and completed-cell outcomes, so a
	// SIGKILLed coordinator restarted with the same journal resumes the
	// distributed run instead of losing it.  The caller closes it.
	Recovery *journal.Journal
}

// cellOutcome is one terminal attempt outcome delivered to RunCell.
type cellOutcome struct {
	res *harness.BenchResult
	err error
}

// cellState tracks one enqueued cell attempt.
type cellState struct {
	cell    harness.Cell
	attempt int
	leaseID string // "" while queued, the granting lease while out
	ch      chan cellOutcome
}

// lease is one outstanding grant.
type lease struct {
	id       string
	index    int
	worker   string
	deadline time.Time
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	lastSeen time.Time
	sawDone  bool
	cells    int64
}

// Coordinator shards suite cells across pulling workers and admits
// exactly one completion per cell.  Plug RunCell into
// harness.Options.CellRunner, serve Handler over HTTP, and call Start;
// after RunSuite returns call Finish (then optionally WaitDrained) so
// workers learn the run is over, and Close to stop the lease watchdog.
// All methods are safe for concurrent use.
type Coordinator struct {
	o   CoordinatorOptions
	cfg ConfigReply

	logMu sync.Mutex

	mu        sync.Mutex
	queue     []int
	cells     map[int]*cellState
	leases    map[string]*lease
	workers   map[string]*workerState
	attempts  map[int]int
	rec       *recovered // state salvaged from a prior incarnation
	nextLease int64
	finished  bool

	stopWatch chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
}

// NewCoordinator builds a coordinator for one run.  meta is the run's
// result-affecting configuration fingerprint (harness
// Options.JournalMeta), which every worker must reproduce bit-for-bit
// before it is allowed to lease cells.
func NewCoordinator(meta journal.Meta, o CoordinatorOptions) *Coordinator {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	c := &Coordinator{
		o: o,
		cfg: ConfigReply{
			ProtoVersion:   ProtoVersion,
			Meta:           meta,
			Fingerprint:    meta.Fingerprint(),
			LeaseTTLMillis: o.LeaseTTL.Milliseconds(),
			WatchdogMillis: o.Watchdog.Milliseconds(),
			MetricsEnabled: o.Metrics != nil,
		},
		cells:     make(map[int]*cellState),
		leases:    make(map[string]*lease),
		workers:   make(map[string]*workerState),
		attempts:  make(map[int]int),
		stopWatch: make(chan struct{}),
	}
	if o.Recovery != nil {
		c.rec = replayRecovery(o.Recovery)
		c.nextLease = c.rec.nextLease
		if n := len(c.rec.leases); n > 0 {
			c.o.Metrics.Counter("fabric.recovered_leases").Add(int64(n))
			c.logf("recovered %d outstanding lease(s) from a previous coordinator", n)
		}
		if n := len(c.rec.outcomes); n > 0 {
			c.o.Metrics.Counter("fabric.recovered_cells").Add(int64(n))
			c.logf("recovered %d completed cell(s) from a previous coordinator", n)
		}
	}
	return c
}

// logf serializes progress lines; no-op without a Progress writer.
func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.o.Progress == nil {
		return
	}
	c.logMu.Lock()
	defer c.logMu.Unlock()
	fmt.Fprintf(c.o.Progress, "[fabric] "+format+"\n", args...)
}

// Start launches the lease watchdog: a scan every LeaseTTL/4 requeues
// cells whose worker missed its heartbeats.  Idempotent.
func (c *Coordinator) Start() {
	c.startOnce.Do(func() {
		interval := c.o.LeaseTTL / 4
		if interval < 5*time.Millisecond {
			interval = 5 * time.Millisecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-c.stopWatch:
					return
				case now := <-t.C:
					c.expire(now)
				}
			}
		}()
	})
}

// expire revokes leases past their heartbeat deadline and requeues
// their cells at the head of the queue, so a lost worker's cell is the
// very next one stolen.
func (c *Coordinator) expire(now time.Time) {
	type requeued struct {
		id, worker, bench string
		index             int
	}
	var out []requeued
	c.mu.Lock()
	for id, l := range c.leases {
		if now.Before(l.deadline) {
			continue
		}
		delete(c.leases, id)
		cs := c.cells[l.index]
		if cs != nil && cs.leaseID == id {
			cs.leaseID = ""
			c.queue = append([]int{l.index}, c.queue...)
			out = append(out, requeued{id: id, worker: l.worker, bench: cs.cell.Bench.Name, index: l.index})
		}
	}
	c.mu.Unlock()
	for _, r := range out {
		c.o.Metrics.Counter("fabric.requeues").Inc()
		c.o.Metrics.Counter("fabric.worker." + r.worker + ".requeued").Inc()
		c.logf("lease %s on worker %s missed heartbeats; requeued cell %d (%s)", r.id, r.worker, r.index, r.bench)
	}
}

// Finish marks the run complete: subsequent lease and heartbeat replies
// tell workers to exit.  Idempotent.
func (c *Coordinator) Finish() {
	c.mu.Lock()
	c.finished = true
	c.mu.Unlock()
}

// WaitDrained blocks until every recently-active worker has been told
// the run is done, or the timeout passes — so a coordinator can shut
// its listener without stranding workers mid-poll.  Workers silent for
// more than two lease TTLs (crashed or partitioned) are not waited for.
func (c *Coordinator) WaitDrained(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		drained := true
		cutoff := time.Now().Add(-2 * c.o.LeaseTTL)
		for _, w := range c.workers {
			if !w.sawDone && w.lastSeen.After(cutoff) {
				drained = false
			}
		}
		c.mu.Unlock()
		if drained || time.Now().After(deadline) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close stops the lease watchdog.  Idempotent.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() { close(c.stopWatch) })
}

// RunCell is the harness.CellRunner: it queues the cell for the next
// pulling worker and blocks until exactly one completion is admitted
// for it (or the run's context is canceled).  Harness-level retries
// call it again, producing a fresh attempt with a fresh lease.
func (c *Coordinator) RunCell(ctx context.Context, cell harness.Cell, _ harness.Options) (*harness.BenchResult, error) {
	ch := c.enqueue(cell)
	select {
	case out := <-ch:
		return out.res, out.err
	case <-ctx.Done():
		c.abandon(cell.Index)
		// A completion may have been admitted between cancellation and
		// abandonment; prefer the real outcome when it exists.
		select {
		case out := <-ch:
			return out.res, out.err
		default:
		}
		return nil, &fabricCanceled{bench: cell.Bench.Name, err: ctx.Err()}
	}
}

// enqueue registers a fresh attempt for the cell and makes it
// stealable.  Recovered state is consumed here: a completion admitted
// by a previous coordinator incarnation is delivered immediately
// (consume-once, so a journaled failure still earns a live retry), and
// an outstanding recovered lease re-installs into the lease table with
// a fresh TTL instead of re-queueing — its worker is presumed still
// computing and will complete under the old lease ID.
func (c *Coordinator) enqueue(cell harness.Cell) chan cellOutcome {
	ch := make(chan cellOutcome, 1)
	c.mu.Lock()
	c.attempts[cell.Index]++
	if c.rec != nil {
		if outs := c.rec.outcomes[cell.Index]; len(outs) > 0 {
			cr := outs[0]
			c.rec.outcomes[cell.Index] = outs[1:]
			c.mu.Unlock()
			c.o.Metrics.Counter("fabric.cells_replayed").Inc()
			c.logf("cell %d (%s) outcome replayed from recovery journal", cell.Index, cell.Bench.Name)
			ch <- cr.outcome()
			return ch
		}
		if lr, ok := c.rec.leases[cell.Index]; ok && lr.Bench == cell.Bench.Name {
			delete(c.rec.leases, cell.Index)
			delete(c.rec.leaseIDs, lr.ID)
			cs := &cellState{cell: cell, attempt: c.attempts[cell.Index], leaseID: lr.ID, ch: ch}
			c.cells[cell.Index] = cs
			c.leases[lr.ID] = &lease{id: lr.ID, index: cell.Index, worker: lr.Worker, deadline: time.Now().Add(c.o.LeaseTTL)}
			c.mu.Unlock()
			c.o.Metrics.Counter("fabric.leases_reattached").Inc()
			c.logf("cell %d (%s) re-attached to recovered lease %s on worker %s", cell.Index, cell.Bench.Name, lr.ID, lr.Worker)
			return ch
		}
	}
	c.cells[cell.Index] = &cellState{cell: cell, attempt: c.attempts[cell.Index], ch: ch}
	c.queue = append(c.queue, cell.Index)
	c.mu.Unlock()
	c.o.Metrics.Counter("fabric.cells_enqueued").Inc()
	return ch
}

// abandon withdraws a canceled cell: it can no longer be leased, and a
// late completion for it is dropped as stale.
func (c *Coordinator) abandon(index int) {
	c.mu.Lock()
	if cs := c.cells[index]; cs != nil {
		if cs.leaseID != "" {
			delete(c.leases, cs.leaseID)
		}
		delete(c.cells, index)
	}
	c.mu.Unlock()
}

// Handler returns the coordinator's HTTP handler, serving the fabric
// wire protocol (PathConfig, PathLease, PathComplete, PathHeartbeat).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+PathConfig, c.handleConfig)
	mux.HandleFunc("POST "+PathLease, c.handleLease)
	mux.HandleFunc("POST "+PathComplete, c.handleComplete)
	mux.HandleFunc("POST "+PathHeartbeat, c.handleHeartbeat)
	return mux
}

// reply writes one JSON message.
func reply(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// decode parses one JSON request body, bounding it defensively.
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 16<<20)).Decode(v); err != nil {
		http.Error(w, "fabric: undecodable request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// touch updates the worker's liveness record (caller holds c.mu).
func (c *Coordinator) touch(id string) *workerState {
	ws := c.workers[id]
	if ws == nil {
		ws = &workerState{}
		c.workers[id] = ws
	}
	ws.lastSeen = time.Now()
	return ws
}

func (c *Coordinator) handleConfig(w http.ResponseWriter, _ *http.Request) {
	reply(w, c.cfg)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	if req.ProtoVersion != ProtoVersion {
		http.Error(w, fmt.Sprintf("fabric: protocol version %d, coordinator speaks %d", req.ProtoVersion, ProtoVersion), http.StatusBadRequest)
		return
	}
	if req.Fingerprint != c.cfg.Fingerprint {
		http.Error(w, "fabric: configuration fingerprint mismatch; worker binary or options skewed from the coordinator", http.StatusConflict)
		return
	}
	var out LeaseReply
	c.mu.Lock()
	ws := c.touch(req.WorkerID)
	for len(c.queue) > 0 {
		i := c.queue[0]
		c.queue = c.queue[1:]
		cs := c.cells[i]
		if cs == nil || cs.leaseID != "" {
			continue // abandoned, or requeued and already re-leased
		}
		c.nextLease++
		id := fmt.Sprintf("lease-%d", c.nextLease)
		cs.leaseID = id
		c.leases[id] = &lease{id: id, index: i, worker: req.WorkerID, deadline: time.Now().Add(c.o.LeaseTTL)}
		out = LeaseReply{Status: LeaseCell, LeaseID: id, Index: i, Bench: cs.cell.Bench.Name, Attempt: cs.attempt}
		break
	}
	if out.Status == "" {
		if c.finished {
			out.Status = LeaseDone
			ws.sawDone = true
		} else {
			out.Status = LeaseWait
		}
	}
	c.mu.Unlock()
	if out.Status == LeaseCell {
		// Persist the grant before revealing it, so a coordinator that
		// dies right after replying still knows who holds the cell.
		c.persist(RecordLease, leaseRecord{ID: out.LeaseID, Index: out.Index, Bench: out.Bench, Worker: req.WorkerID})
		c.o.Metrics.Counter("fabric.leases").Inc()
		c.o.Metrics.Counter("fabric.worker." + req.WorkerID + ".leases").Inc()
		c.logf("cell %d (%s) leased to worker %s as %s (attempt %d)", out.Index, out.Bench, req.WorkerID, out.LeaseID, out.Attempt)
	}
	reply(w, out)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decode(w, r, &req) {
		return
	}
	if req.ProtoVersion != ProtoVersion {
		http.Error(w, fmt.Sprintf("fabric: protocol version %d, coordinator speaks %d", req.ProtoVersion, ProtoVersion), http.StatusBadRequest)
		return
	}
	var (
		cs    *cellState
		stale bool
		early bool
	)
	c.mu.Lock()
	ws := c.touch(req.WorkerID)
	l, ok := c.leases[req.LeaseID]
	if !ok || l.index != req.Index {
		// Not in the live lease table — but after a coordinator restart
		// a worker can finish its cell before RunSuite re-enqueues it.
		// A completion naming a recovered lease is admitted early: it
		// is journaled and stashed for the enqueue to consume.
		if c.rec != nil {
			if lr, lok := c.rec.leases[req.Index]; lok && lr.ID == req.LeaseID && lr.Bench == req.Bench {
				delete(c.rec.leases, req.Index)
				delete(c.rec.leaseIDs, lr.ID)
				early = true
				ws.cells++
			}
		}
		stale = !early
	} else {
		cs = c.cells[l.index]
		if cs == nil || cs.leaseID != req.LeaseID || cs.cell.Bench.Name != req.Bench {
			stale, cs = true, nil
		} else {
			// Admission point: exactly one completion per cell attempt
			// passes this gate; the lease and cell leave the tables so
			// every later claim is stale.
			delete(c.leases, req.LeaseID)
			delete(c.cells, l.index)
			ws.cells++
		}
	}
	c.mu.Unlock()

	if stale {
		c.o.Metrics.Counter("fabric.stale_completions").Inc()
		c.logf("stale completion for cell %d (%s) from worker %s dropped", req.Index, req.Bench, req.WorkerID)
		reply(w, CompleteReply{Stale: true})
		return
	}

	// Persist the admitted completion before delivering or replying, so
	// a coordinator killed immediately after still replays it.
	c.persist(RecordCell, cellRecord{
		Index: req.Index, Bench: req.Bench, LeaseID: req.LeaseID, Worker: req.WorkerID,
		Result: req.Result, Error: req.Error, Retryable: req.Retryable,
	})

	if early {
		c.mu.Lock()
		c.rec.outcomes[req.Index] = append(c.rec.outcomes[req.Index], cellRecord{
			Index: req.Index, Bench: req.Bench, LeaseID: req.LeaseID, Worker: req.WorkerID,
			Result: req.Result, Error: req.Error, Retryable: req.Retryable,
		})
		c.mu.Unlock()
		c.o.Metrics.Counter("fabric.cells_done").Inc()
		c.o.Metrics.Counter("fabric.worker." + req.WorkerID + ".cells_done").Inc()
		c.o.Metrics.Import("", req.Telemetry)
		c.logf("cell %d (%s) completed early by worker %s (pre-enqueue admission)", req.Index, req.Bench, req.WorkerID)
		reply(w, CompleteReply{Accepted: true})
		return
	}

	var out cellOutcome
	switch {
	case req.Error != "":
		out.err = &RemoteError{Bench: req.Bench, Worker: req.WorkerID, Msg: req.Error, Transient: req.Retryable}
	default:
		res := new(harness.BenchResult)
		if err := json.Unmarshal(req.Result, res); err != nil {
			// CRC-clean HTTP body but an unparseable result: version
			// skew the fingerprint missed, or a torn stream.  Surface
			// as a transient remote failure so the retry policy re-runs
			// the cell rather than poisoning the suite.
			out.err = &RemoteError{Bench: req.Bench, Worker: req.WorkerID, Msg: "undecodable result: " + err.Error(), Transient: true}
		} else {
			out.res = res
		}
	}
	c.o.Metrics.Counter("fabric.cells_done").Inc()
	c.o.Metrics.Counter("fabric.worker." + req.WorkerID + ".cells_done").Inc()
	c.o.Metrics.Import("", req.Telemetry)
	c.logf("cell %d (%s) completed by worker %s", req.Index, req.Bench, req.WorkerID)
	cs.ch <- out
	reply(w, CompleteReply{Accepted: true})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decode(w, r, &req) {
		return
	}
	var out HeartbeatReply
	now := time.Now()
	c.mu.Lock()
	ws := c.touch(req.WorkerID)
	for _, id := range req.LeaseIDs {
		if l, ok := c.leases[id]; ok && l.worker == req.WorkerID {
			l.deadline = now.Add(c.o.LeaseTTL)
			continue
		}
		if c.rec != nil {
			if idx, ok := c.rec.leaseIDs[id]; ok && c.rec.leases[idx].Worker == req.WorkerID {
				// A recovered lease not yet re-enqueued by RunSuite:
				// the worker is alive and computing — don't revoke.
				continue
			}
		}
		out.Revoked = append(out.Revoked, id)
	}
	out.Done = c.finished
	if out.Done {
		ws.sawDone = true
	}
	c.mu.Unlock()
	c.o.Metrics.Counter("fabric.heartbeats").Inc()
	reply(w, out)
}

// Workers reports how many distinct workers have ever joined the run.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}
