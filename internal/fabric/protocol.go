package fabric

import (
	"encoding/json"

	"ilplimit/internal/journal"
	"ilplimit/internal/telemetry"
)

// ProtoVersion is the fabric wire-protocol version.  Coordinator and
// worker refuse to talk across versions: every lease and completion
// carries the sender's version, and the coordinator rejects mismatches
// with 400 before any work moves.  Bump it when a message or field
// changes meaning.
const ProtoVersion = 1

// Wire paths served by Coordinator.Handler.  All bodies are JSON.
const (
	// PathConfig (GET) returns the run's ConfigReply: the protocol
	// version, the journal.Meta the run is bound to, and scheduling
	// parameters.  Workers fetch it once at join time.
	PathConfig = "/v1/config"
	// PathLease (POST LeaseRequest → LeaseReply) pulls one cell.  Pull,
	// not push: an idle worker asks for work, so a fast worker steals
	// cells a statically balanced shard map would have stranded on a
	// slow one.
	PathLease = "/v1/lease"
	// PathComplete (POST CompleteRequest → CompleteReply) streams one
	// cell's outcome back under its lease.
	PathComplete = "/v1/complete"
	// PathHeartbeat (POST HeartbeatRequest → HeartbeatReply) keeps a
	// worker's leases alive and learns which were revoked.
	PathHeartbeat = "/v1/heartbeat"
)

// ConfigReply is the coordinator's join-time description of the run.
type ConfigReply struct {
	// ProtoVersion is the coordinator's wire-protocol version.
	ProtoVersion int `json:"proto_version"`
	// Meta is the result-affecting run configuration (scale, models,
	// benchmark list, memory, step limit) the suite's journal is bound
	// to.  A worker reconstructs its harness Options from Meta alone.
	Meta journal.Meta `json:"meta"`
	// Fingerprint is Meta.Fingerprint(), precomputed so workers compare
	// canonical bytes rather than re-deriving marshaling rules.  A
	// worker whose reconstructed options fingerprint differently — a
	// version-skewed binary whose defaults drifted — must refuse to
	// serve rather than journal incompatible results.
	Fingerprint string `json:"fingerprint"`
	// LeaseTTLMillis is how long a lease survives without a heartbeat
	// before its cell is requeued; workers heartbeat a few times per
	// TTL.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// WatchdogMillis propagates the run's analyzer stall watchdog
	// (harness.Options.Watchdog) to workers; 0 leaves it off.
	WatchdogMillis int64 `json:"watchdog_ms,omitempty"`
	// MetricsEnabled asks workers to capture per-cell telemetry and
	// attach it to completions for the coordinator's merged report.
	MetricsEnabled bool `json:"metrics_enabled,omitempty"`
}

// LeaseRequest asks for one cell.
type LeaseRequest struct {
	// ProtoVersion is the worker's wire-protocol version.
	ProtoVersion int `json:"proto_version"`
	// WorkerID names the puller for telemetry and lease bookkeeping.
	WorkerID string `json:"worker_id"`
	// Fingerprint echoes the worker's reconstructed configuration
	// fingerprint; the coordinator refuses a mismatch (409).
	Fingerprint string `json:"fingerprint"`
}

// LeaseReply statuses.
const (
	// LeaseCell grants a cell: LeaseID, Index, Bench and Attempt are set.
	LeaseCell = "cell"
	// LeaseWait means no cell is currently available but the run is not
	// over (everything is leased out); poll again shortly.
	LeaseWait = "wait"
	// LeaseDone means the run is complete; the worker should exit.
	LeaseDone = "done"
)

// LeaseReply grants a cell, asks the worker to wait, or ends the run.
type LeaseReply struct {
	// Status is LeaseCell, LeaseWait or LeaseDone.
	Status string `json:"status"`
	// LeaseID names this grant; completions and heartbeats cite it.
	LeaseID string `json:"lease_id,omitempty"`
	// Index is the cell's suite-order position.
	Index int `json:"index"`
	// Bench is the benchmark name; the worker resolves it locally.
	Bench string `json:"bench,omitempty"`
	// Attempt counts grants of this cell (1 = first), covering both
	// requeues after lost workers and harness-level retries.
	Attempt int `json:"attempt,omitempty"`
}

// CompleteRequest streams one cell outcome back under a lease.
type CompleteRequest struct {
	// ProtoVersion is the worker's wire-protocol version.
	ProtoVersion int `json:"proto_version"`
	// WorkerID and LeaseID identify the grant being fulfilled.
	WorkerID string `json:"worker_id"`
	// LeaseID is the grant this outcome fulfills.
	LeaseID string `json:"lease_id"`
	// Index and Bench restate the cell for cross-checking.
	Index int `json:"index"`
	// Bench is the cell's benchmark name.
	Bench string `json:"bench"`
	// Result is the worker's marshaled harness.BenchResult, verbatim.
	// The coordinator journals these bytes, which is one leg of the
	// byte-identity guarantee.  Empty on failure.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the cell's failure message when the run failed.
	Error string `json:"error,omitempty"`
	// Retryable is the worker-side harness.Retryable classification of
	// Error, so the coordinator's retry policy treats remote failures
	// exactly like local ones.
	Retryable bool `json:"retryable,omitempty"`
	// Telemetry is the worker's per-cell metrics snapshot when the
	// coordinator asked for metrics, merged into the suite report.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// CompleteReply acknowledges a completion.
type CompleteReply struct {
	// Accepted means the outcome was admitted; exactly one completion
	// per cell is.
	Accepted bool `json:"accepted"`
	// Stale means the lease no longer exists — it expired and the cell
	// was requeued, or another completion already won.  The worker
	// drops the result; the coordinator has (or will get) it elsewhere.
	Stale bool `json:"stale,omitempty"`
}

// HeartbeatRequest refreshes a worker's leases.
type HeartbeatRequest struct {
	// WorkerID names the worker heartbeating.
	WorkerID string `json:"worker_id"`
	// LeaseIDs lists every lease the worker believes it holds.
	LeaseIDs []string `json:"lease_ids,omitempty"`
}

// HeartbeatReply reports revocations and run completion.
type HeartbeatReply struct {
	// Revoked lists cited leases the coordinator no longer recognizes;
	// the worker cancels those cells and discards their results.
	Revoked []string `json:"revoked,omitempty"`
	// Done mirrors LeaseDone so a heartbeat-only worker also learns the
	// run is over.
	Done bool `json:"done,omitempty"`
}
