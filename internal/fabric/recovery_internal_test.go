package fabric

import (
	"encoding/json"
	"testing"
	"time"

	"ilplimit/internal/harness"
	"ilplimit/internal/iofault"
	"ilplimit/internal/journal"
)

// recoveryJournal opens a coordinator recovery journal in dir and
// registers its close.  Records() surfaces only records salvaged at
// open time — exactly what a restarted coordinator sees — so tests
// append to one handle and replay over a reopened one.
func recoveryJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.OpenNamed(iofault.OS(), dir, "coordinator.ilpj", harness.Options{}.JournalMeta(""))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = j.Close() })
	return j
}

// reopen closes j and opens the same recovery journal again, as the
// next coordinator incarnation would.
func reopen(t *testing.T, j *journal.Journal, dir string) *journal.Journal {
	t.Helper()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return recoveryJournal(t, dir)
}

func appendRec(t *testing.T, j *journal.Journal, kind string, v interface{}) {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRecord(kind, raw); err != nil {
		t.Fatal(err)
	}
}

// TestReplayRecoveryFold drives the two-pass fold with a re-granted
// lease: a completion names the lease it was admitted under, so it must
// consume exactly that grant and leave a newer grant for the same cell
// outstanding.
func TestReplayRecoveryFold(t *testing.T) {
	dir := t.TempDir()
	j := recoveryJournal(t, dir)
	appendRec(t, j, RecordLease, leaseRecord{ID: "lease-1", Index: 0, Bench: "awk", Worker: "w0"})
	appendRec(t, j, RecordLease, leaseRecord{ID: "lease-2", Index: 1, Bench: "eqntott", Worker: "w0"})
	// Cell 0 requeued and re-granted: last grant wins the lease table.
	appendRec(t, j, RecordLease, leaseRecord{ID: "lease-3", Index: 0, Bench: "awk", Worker: "w1"})
	// The original attempt's completion consumes lease-1 only; lease-3
	// must survive the fold even though the records are not interleaved.
	appendRec(t, j, RecordCell, cellRecord{Index: 0, Bench: "awk", LeaseID: "lease-1", Worker: "w0", Error: "boom", Retryable: true})
	appendRec(t, j, RecordCell, cellRecord{Index: 1, Bench: "eqntott", LeaseID: "lease-2", Worker: "w0", Result: json.RawMessage(`{"name":"eqntott"}`)})

	rec := replayRecovery(reopen(t, j, dir))
	if rec.nextLease != 3 {
		t.Errorf("nextLease = %d, want 3", rec.nextLease)
	}
	if len(rec.leases) != 1 || rec.leases[0].ID != "lease-3" || rec.leases[0].Worker != "w1" {
		t.Errorf("surviving leases = %+v, want only lease-3 on cell 0", rec.leases)
	}
	if idx, ok := rec.leaseIDs["lease-3"]; !ok || idx != 0 {
		t.Errorf("leaseIDs = %+v, want lease-3 -> 0", rec.leaseIDs)
	}
	if _, ok := rec.leaseIDs["lease-1"]; ok {
		t.Error("consumed lease-1 still indexed")
	}
	if len(rec.outcomes[0]) != 1 || len(rec.outcomes[1]) != 1 {
		t.Fatalf("outcomes = %+v, want one per cell", rec.outcomes)
	}

	// Outcome conversion round-trips the admission-path semantics.
	if out := rec.outcomes[0][0].outcome(); out.err == nil || !harness.Retryable(out.err) {
		t.Errorf("journaled transient failure replayed as %v", out.err)
	}
	if out := rec.outcomes[1][0].outcome(); out.err != nil || out.res == nil || out.res.Name != "eqntott" {
		t.Errorf("journaled result replayed as (%+v, %v)", out.res, out.err)
	}
}

// TestReplayRecoverySkipsUnparseable checks the best-effort contract: a
// CRC-valid but semantically broken record is skipped, not fatal.
func TestReplayRecoverySkipsUnparseable(t *testing.T) {
	dir := t.TempDir()
	j := recoveryJournal(t, dir)
	if err := j.AppendRecord(RecordLease, []byte(`{"id":123}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendRecord(RecordCell, []byte(`not json`)); err != nil {
		t.Fatal(err)
	}
	appendRec(t, j, RecordLease, leaseRecord{ID: "lease-7", Index: 2, Bench: "awk", Worker: "w0"})
	rec := replayRecovery(reopen(t, j, dir))
	if len(rec.leases) != 1 || rec.leases[2].ID != "lease-7" || rec.nextLease != 7 {
		t.Errorf("replay over junk records = %+v nextLease=%d", rec.leases, rec.nextLease)
	}
	if len(rec.outcomes) != 0 {
		t.Errorf("junk cell record produced outcomes: %+v", rec.outcomes)
	}
}

// TestUndecodableJournaledResult checks a corrupted persisted result
// replays as a transient failure (the cell re-runs) rather than
// poisoning the suite.
func TestUndecodableJournaledResult(t *testing.T) {
	cr := cellRecord{Index: 0, Bench: "awk", Worker: "w0", Result: json.RawMessage(`{"name":`)}
	out := cr.outcome()
	if out.err == nil || !harness.Retryable(out.err) {
		t.Errorf("undecodable journaled result = (%+v, %v), want transient failure", out.res, out.err)
	}
}

func TestLeaseOrdinal(t *testing.T) {
	for _, tc := range []struct {
		id   string
		want int64
	}{
		{"lease-12", 12}, {"lease-1", 1}, {"lease-x", 0}, {"bogus", 0}, {"", 0},
	} {
		if got := leaseOrdinal(tc.id); got != tc.want {
			t.Errorf("leaseOrdinal(%q) = %d, want %d", tc.id, got, tc.want)
		}
	}
}

// TestBackoffSchedule checks the shared worker backoff doubles to its
// cap, jitters within the promised window, and rewinds on reset.
func TestBackoffSchedule(t *testing.T) {
	bo := newBackoff(100*time.Millisecond, 400*time.Millisecond)
	expect := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	for i, cur := range expect {
		d := bo.next()
		if d < cur/2 || d >= cur {
			t.Errorf("next()[%d] = %v, want in [%v, %v)", i, d, cur/2, cur)
		}
	}
	bo.reset()
	if d := bo.next(); d < 50*time.Millisecond || d >= 100*time.Millisecond {
		t.Errorf("next() after reset = %v, want in [50ms, 100ms)", d)
	}
	// Degenerate inputs clamp instead of panicking.
	bo = newBackoff(0, -1)
	if d := bo.next(); d <= 0 {
		t.Errorf("defaulted backoff returned %v", d)
	}
}
