package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"ilplimit/internal/bench"
	"ilplimit/internal/faultinject"
	"ilplimit/internal/harness"
	"ilplimit/internal/journal"
	"ilplimit/internal/limits"
	"ilplimit/internal/telemetry"
)

// protocolError is a non-2xx coordinator reply.  Unlike a transport
// error it is never retried: the coordinator understood the request and
// refused it (protocol version skew, fingerprint mismatch).
type protocolError struct {
	code int
	msg  string
}

// Error renders the rejection with its HTTP status.
func (e *protocolError) Error() string {
	return fmt.Sprintf("coordinator rejected request (HTTP %d): %s", e.code, e.msg)
}

// Worker pulls suite cells from a coordinator, executes them through
// harness.RunCell, and streams completions back.  The zero value plus
// Base is usable; Run applies defaults.
type Worker struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:7070".
	Base string
	// ID names this worker in leases and telemetry (default "w<pid>").
	ID string
	// Slots is how many cells the worker runs concurrently (default 1;
	// each cell already fans its analysis out across cores).
	Slots int
	// Poll is the idle re-lease interval while the coordinator has no
	// cell available (default 150ms).
	Poll time.Duration
	// JoinWait bounds how long the worker retries the initial config
	// fetch while the coordinator is still coming up (default 10s).
	JoinWait time.Duration
	// RejoinWait bounds how long the worker tolerates a mid-run
	// coordinator outage (default 60s).  While the coordinator is down
	// — restarting after a SIGKILL, say — lease polls, heartbeats, and
	// completion uploads all retry with capped jittered backoff instead
	// of failing their cells, and give up only after RejoinWait of
	// continuous unreachability.
	RejoinWait time.Duration
	// Serial steps the analysis serially (harness.Options.Serial).
	Serial bool
	// TraceStore, when non-empty, is a worker-local annotated trace
	// store directory (harness.Options.TraceStore).  Like Serial it is
	// a local execution knob, not part of the run's fingerprint: where
	// (and how warm) a cell runs cannot change its result.
	TraceStore string
	// Progress, when non-nil, receives one line per worker event.
	Progress io.Writer
	// Plan injects deterministic fabric faults (nil in production).
	Plan *faultinject.FabricPlan
	// Exit replaces os.Exit for the plan's kill-after-leases fault, so
	// tests can observe the death instead of dying.
	Exit func(code int)
	// Client is the HTTP client to use (default http.DefaultClient).
	Client *http.Client

	logMu sync.Mutex

	done   atomic.Bool
	mu     sync.Mutex
	active map[string]*activeLease
}

// activeLease is one granted cell the worker is currently running.
type activeLease struct {
	id      string
	cancel  context.CancelFunc
	revoked atomic.Bool
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Progress == nil {
		return
	}
	w.logMu.Lock()
	defer w.logMu.Unlock()
	fmt.Fprintf(w.Progress, "[worker "+w.ID+"] "+format+"\n", args...)
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends one JSON request and decodes the JSON reply.  Non-2xx
// replies come back as *protocolError; transport failures as-is.
func (w *Worker) post(ctx context.Context, path string, req, out interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("fabric: marshal %s request: %w", path, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &protocolError{code: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(out)
}

// join fetches the coordinator's config, retrying transport failures
// with capped jittered backoff until JoinWait passes — a worker
// routinely starts before the coordinator's listener is up.
func (w *Worker) join(ctx context.Context) (ConfigReply, error) {
	var cfg ConfigReply
	deadline := time.Now().Add(w.JoinWait)
	bo := newBackoff(100*time.Millisecond, 2*time.Second)
	for {
		hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Base+PathConfig, nil)
		if err != nil {
			return cfg, err
		}
		resp, err := w.client().Do(hreq)
		if err == nil {
			err = json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&cfg)
			resp.Body.Close()
			if err == nil {
				return cfg, nil
			}
		}
		if time.Now().After(deadline) {
			return cfg, fmt.Errorf("fabric: coordinator at %s unreachable for %v: %w", w.Base, w.JoinWait, err)
		}
		select {
		case <-time.After(bo.next()):
		case <-ctx.Done():
			return cfg, ctx.Err()
		}
	}
}

// optionsFromMeta reconstructs the result-affecting harness Options a
// journal.Meta describes.  The caller cross-checks the reconstruction's
// own fingerprint against the coordinator's before running anything.
func optionsFromMeta(m journal.Meta) (harness.Options, error) {
	var opt harness.Options
	if m.SchemaVersion != journal.SchemaVersion {
		return opt, fmt.Errorf("fabric: coordinator journal schema %d, worker speaks %d", m.SchemaVersion, journal.SchemaVersion)
	}
	opt.Scale = m.Scale
	opt.MemWords = m.MemWords
	opt.Optimize = m.Optimize
	opt.StepLimit = m.StepLimit
	for _, s := range m.Models {
		var md limits.Model
		if err := md.UnmarshalText([]byte(s)); err != nil {
			return opt, fmt.Errorf("fabric: %w", err)
		}
		opt.Models = append(opt.Models, md)
	}
	for _, name := range m.Benchmarks {
		b, err := bench.ByName(name)
		if err != nil {
			return opt, fmt.Errorf("fabric: %w", err)
		}
		opt.Benchmarks = append(opt.Benchmarks, b)
	}
	return opt, nil
}

// Run joins the coordinator, verifies protocol version and
// configuration fingerprint, then pulls and executes cells until the
// coordinator reports the run done (nil) or the context is canceled.
func (w *Worker) Run(ctx context.Context) error {
	if w.ID == "" {
		w.ID = fmt.Sprintf("w%d", os.Getpid())
	}
	if w.Slots < 1 {
		w.Slots = 1
	}
	if w.Poll <= 0 {
		w.Poll = 150 * time.Millisecond
	}
	if w.JoinWait <= 0 {
		w.JoinWait = 10 * time.Second
	}
	if w.RejoinWait <= 0 {
		w.RejoinWait = 60 * time.Second
	}
	if w.Exit == nil {
		w.Exit = os.Exit
	}
	w.active = make(map[string]*activeLease)

	cfg, err := w.join(ctx)
	if err != nil {
		return err
	}
	if cfg.ProtoVersion != ProtoVersion {
		return fmt.Errorf("fabric: coordinator protocol version %d, worker speaks %d", cfg.ProtoVersion, ProtoVersion)
	}
	opt, err := optionsFromMeta(cfg.Meta)
	if err != nil {
		return err
	}
	// Bit-for-bit compatibility gate: if this binary's defaults drifted
	// so the reconstructed options fingerprint differently, its results
	// would not be interchangeable with the coordinator's — refuse.
	if fp := opt.JournalMeta("").Fingerprint(); fp != cfg.Fingerprint {
		return fmt.Errorf("fabric: reconstructed configuration fingerprint differs from coordinator's; version-skewed worker binary")
	}
	opt.Serial = w.Serial
	opt.TraceStore = w.TraceStore
	opt.Progress = w.Progress
	opt.Watchdog = time.Duration(cfg.WatchdogMillis) * time.Millisecond
	ttl := time.Duration(cfg.LeaseTTLMillis) * time.Millisecond

	w.logf("joined %s: %d cells, %d models, lease TTL %v", w.Base, len(opt.Benchmarks), len(opt.Models), ttl)

	hbCtx, stopHB := context.WithCancel(ctx)
	defer stopHB()
	go w.heartbeatLoop(hbCtx, ttl)

	errs := make([]error, w.Slots)
	var wg sync.WaitGroup
	for s := 0; s < w.Slots; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			errs[s] = w.slot(ctx, opt, cfg)
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// heartbeatLoop refreshes the worker's leases a few times per TTL and
// learns about revocations (its cell was requeued elsewhere — cancel
// it) and run completion.  Transport errors enter the shared jittered
// backoff (capped below the normal interval, so a recovering
// coordinator hears from the worker before the lease TTL burns down)
// instead of just skipping a tick.  A partitioned plan silences it,
// simulating the network fault the lease watchdog exists for.
func (w *Worker) heartbeatLoop(ctx context.Context, ttl time.Duration) {
	interval := ttl / 3
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	bo := newBackoff(interval/4, interval)
	wait := interval
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
		wait = interval
		if w.Plan.Partitioned() {
			continue
		}
		req := HeartbeatRequest{WorkerID: w.ID}
		w.mu.Lock()
		for id := range w.active {
			req.LeaseIDs = append(req.LeaseIDs, id)
		}
		w.mu.Unlock()
		var rep HeartbeatReply
		if err := w.post(ctx, PathHeartbeat, req, &rep); err != nil {
			wait = bo.next() // transient; retry sooner than a full tick
			continue
		}
		bo.reset()
		if rep.Done {
			w.done.Store(true)
		}
		for _, id := range rep.Revoked {
			w.mu.Lock()
			al := w.active[id]
			w.mu.Unlock()
			if al != nil && !al.revoked.Swap(true) {
				w.logf("lease %s revoked by coordinator; canceling cell", id)
				al.cancel()
			}
		}
	}
}

// slot is one cell-execution loop: lease, run, complete, repeat.  A
// coordinator outage mid-run (restart after SIGKILL) is ridden out
// with capped jittered backoff for up to RejoinWait before the slot
// gives up.
func (w *Worker) slot(ctx context.Context, opt harness.Options, cfg ConfigReply) error {
	bo := newBackoff(w.Poll, 2*time.Second)
	var downSince time.Time
	for {
		if w.done.Load() {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		var rep LeaseReply
		err := w.post(ctx, PathLease, LeaseRequest{ProtoVersion: ProtoVersion, WorkerID: w.ID, Fingerprint: cfg.Fingerprint}, &rep)
		if err != nil {
			var pe *protocolError
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if isProtocol(err, &pe) {
				return pe // version or fingerprint rejection: fatal
			}
			if downSince.IsZero() {
				downSince = time.Now()
				w.logf("coordinator unreachable (%v); backing off up to %v", err, w.RejoinWait)
			}
			if time.Since(downSince) > w.RejoinWait {
				return fmt.Errorf("fabric: coordinator unreachable for %v: %w", w.RejoinWait, err)
			}
			select {
			case <-time.After(bo.next()):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if !downSince.IsZero() {
			w.logf("coordinator reachable again after %v", time.Since(downSince).Round(time.Millisecond))
		}
		downSince = time.Time{}
		bo.reset()
		switch rep.Status {
		case LeaseWait:
			time.Sleep(w.Poll)
		case LeaseDone:
			w.done.Store(true)
			return nil
		case LeaseCell:
			if w.Plan.LeaseAcquired() {
				w.logf("fault plan: dying after lease %s", rep.LeaseID)
				w.Exit(137)
			}
			w.runLeased(ctx, opt, cfg, rep)
		default:
			return fmt.Errorf("fabric: unknown lease status %q", rep.Status)
		}
	}
}

// isProtocol reports whether err is (or wraps) a *protocolError.
func isProtocol(err error, out **protocolError) bool {
	pe, ok := err.(*protocolError)
	if ok {
		*out = pe
	}
	return ok
}

// runLeased executes one granted cell and uploads its outcome.
func (w *Worker) runLeased(ctx context.Context, opt harness.Options, cfg ConfigReply, rep LeaseReply) {
	cellCtx, cancel := context.WithCancel(ctx)
	al := &activeLease{id: rep.LeaseID, cancel: cancel}
	w.mu.Lock()
	w.active[rep.LeaseID] = al
	w.mu.Unlock()
	defer func() {
		cancel()
		w.mu.Lock()
		delete(w.active, rep.LeaseID)
		w.mu.Unlock()
	}()

	req := CompleteRequest{
		ProtoVersion: ProtoVersion,
		WorkerID:     w.ID,
		LeaseID:      rep.LeaseID,
		Index:        rep.Index,
		Bench:        rep.Bench,
	}
	copt := opt
	copt.Context = cellCtx
	if cfg.MetricsEnabled {
		copt.Metrics = telemetry.NewRegistry()
	}

	switch {
	case rep.Index < 0 || rep.Index >= len(opt.Benchmarks) || opt.Benchmarks[rep.Index].Name != rep.Bench:
		// The grant does not match the configuration both sides
		// fingerprinted; refuse deterministically rather than run the
		// wrong cell.
		req.Error = fmt.Sprintf("leased cell %d (%s) is not in the agreed benchmark list", rep.Index, rep.Bench)
	default:
		w.logf("running cell %d (%s) under %s", rep.Index, rep.Bench, rep.LeaseID)
		res, err := harness.RunCell(harness.Cell{Index: rep.Index, Bench: opt.Benchmarks[rep.Index]}, copt)
		if err != nil {
			req.Error = err.Error()
			req.Retryable = harness.Retryable(err)
		} else {
			raw, merr := json.Marshal(res)
			if merr != nil {
				req.Error = fmt.Sprintf("marshal result: %v", merr)
				req.Retryable = true
			} else {
				req.Result = raw
			}
		}
		if copt.Metrics != nil {
			req.Telemetry = copt.Metrics.Snapshot()
		}
	}
	w.uploadComplete(ctx, req, al)
}

// uploadComplete streams one completion, retrying transport failures
// with the shared capped jittered backoff for up to RejoinWait — long
// enough for a SIGKILLed coordinator to restart and re-admit the
// upload; its admission (and the journal behind it) make retried
// uploads idempotent.  Revoked leases and partitioned plans suppress
// the upload: the coordinator has already moved on.
func (w *Worker) uploadComplete(ctx context.Context, req CompleteRequest, al *activeLease) {
	bo := newBackoff(w.Poll, 2*time.Second)
	deadline := time.Now().Add(w.RejoinWait)
	for {
		if al.revoked.Load() {
			w.logf("dropping completion for revoked lease %s", req.LeaseID)
			return
		}
		if w.Plan.Partitioned() {
			w.logf("fault plan: partitioned; suppressing completion for %s", req.LeaseID)
			return
		}
		var err error
		if w.Plan.DropComplete() {
			err = fmt.Errorf("fabric: fault plan dropped completion upload")
		} else {
			var rep CompleteReply
			err = w.post(ctx, PathComplete, req, &rep)
			if err == nil {
				if rep.Stale {
					w.logf("completion for %s was stale; dropped", req.LeaseID)
				} else {
					w.Plan.CellCompleted()
				}
				return
			}
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			w.logf("giving up on completion for %s: %v", req.LeaseID, err)
			return
		}
		w.logf("completion upload for %s failed (%v); retrying", req.LeaseID, err)
		select {
		case <-time.After(bo.next()):
		case <-ctx.Done():
			return
		}
	}
}
