// These benchmarks regenerate every table and figure of Lam & Wilson,
// "Limits of Control Flow on Parallelism" (ISCA 1992).
// Each Benchmark* function runs the complete pipeline that reproduces one
// experiment and logs the rendered table/figure; timings measure the cost
// of regenerating that experiment from scratch.
//
//	go test -bench=Table3 -benchtime=1x -v .
//
// prints the paper's Table 3 from a fresh run.
package ilplimit_test

import (
	"testing"

	"ilplimit/internal/bench"
	"ilplimit/internal/harness"
	"ilplimit/internal/limits"
)

// runSuite executes the pipeline over the whole suite with the given
// models.
func runSuite(b *testing.B, models []limits.Model) *harness.SuiteResult {
	b.Helper()
	s, err := harness.RunSuite(harness.Options{Scale: 1, Models: models})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTable1Inventory(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.Table1()
	}
	b.Log("\n" + out)
}

func BenchmarkTable2BranchStats(b *testing.B) {
	// Table 2 needs only the profiling pass; restricting the models to
	// ORACLE keeps the analysis cost minimal while reusing the pipeline.
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.Oracle})
		out = s.Table2()
	}
	b.Log("\n" + out)
}

func BenchmarkTable3Parallelism(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, limits.AllModels())
		out = s.Table3()
	}
	b.Log("\n" + out)
}

func BenchmarkTable4Unrolling(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, limits.AllModels())
		out = s.Table4()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure4ControlDependence(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.Base, limits.CD, limits.CDMF})
		out = s.Figure4()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure5Speculation(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.Base, limits.SP, limits.SPCD, limits.SPCDMF})
		out = s.Figure5()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure6MispredictionDistances(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.SP})
		out = s.Figure6()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure7SegmentParallelism(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.SP})
		out = s.Figure7()
	}
	b.Log("\n" + out)
}

// Ablation studies (beyond the paper's tables; see DESIGN.md):
// prediction scheme, scheduling-window size, latency model, and guarded
// instructions.

func BenchmarkStudyPrediction(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunPredictionStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyWindow(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunWindowStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyLatency(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunLatencyStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyGuarded(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunGuardedStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyWidth(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunWidthStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyScale(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunScaleStudy(harness.Options{})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyQuality(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunQualityStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

// BenchmarkPipelineSingle measures the per-benchmark pipeline cost under
// all models — the unit of work every table above is built from.
func BenchmarkPipelineSingle(b *testing.B) {
	for _, name := range []string{"ccom", "espresso", "matrix300"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunBenchmark(bm, harness.Options{Scale: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
