// These benchmarks regenerate every table and figure of Lam & Wilson,
// "Limits of Control Flow on Parallelism" (ISCA 1992).
// Each Benchmark* function runs the complete pipeline that reproduces one
// experiment and logs the rendered table/figure; timings measure the cost
// of regenerating that experiment from scratch.
//
//	go test -bench=Table3 -benchtime=1x -v .
//
// prints the paper's Table 3 from a fresh run.
package ilplimit_test

import (
	"context"
	"testing"

	"ilplimit/internal/asm"
	"ilplimit/internal/bench"
	"ilplimit/internal/harness"
	"ilplimit/internal/iofault"
	"ilplimit/internal/isa"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/predict"
	"ilplimit/internal/telemetry"
	"ilplimit/internal/tracestore"
	"ilplimit/internal/vm"
)

// runSuite executes the pipeline over the whole suite with the given
// models.
func runSuite(b *testing.B, models []limits.Model) *harness.SuiteResult {
	b.Helper()
	s, err := harness.RunSuite(harness.Options{Scale: 1, Models: models})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkTable1Inventory(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.Table1()
	}
	b.Log("\n" + out)
}

func BenchmarkTable2BranchStats(b *testing.B) {
	// Table 2 needs only the profiling pass; restricting the models to
	// ORACLE keeps the analysis cost minimal while reusing the pipeline.
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.Oracle})
		out = s.Table2()
	}
	b.Log("\n" + out)
}

func BenchmarkTable3Parallelism(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, limits.AllModels())
		out = s.Table3()
	}
	b.Log("\n" + out)
}

func BenchmarkTable4Unrolling(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, limits.AllModels())
		out = s.Table4()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure4ControlDependence(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.Base, limits.CD, limits.CDMF})
		out = s.Figure4()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure5Speculation(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.Base, limits.SP, limits.SPCD, limits.SPCDMF})
		out = s.Figure5()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure6MispredictionDistances(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.SP})
		out = s.Figure6()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure7SegmentParallelism(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s := runSuite(b, []limits.Model{limits.SP})
		out = s.Figure7()
	}
	b.Log("\n" + out)
}

// Ablation studies (beyond the paper's tables; see DESIGN.md):
// prediction scheme, scheduling-window size, latency model, and guarded
// instructions.

func BenchmarkStudyPrediction(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunPredictionStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyWindow(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunWindowStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyLatency(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunLatencyStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyGuarded(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunGuardedStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyWidth(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunWidthStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyScale(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunScaleStudy(harness.Options{})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

func BenchmarkStudyQuality(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		s, err := harness.RunQualityStudy(harness.Options{Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
		out = s.Render()
	}
	b.Log("\n" + out)
}

// ---- Group scheduling: serial vs parallel fan-out ----
//
// BenchmarkGroupSerial and BenchmarkGroupParallel isolate the analysis
// pass of RunBenchmark — 7 models × 2 unroll configs over one captured
// trace — comparing the single-goroutine visitor with the chunked
// broadcast-ring fan-out (limits.Replay).  Run with
//
//	go test -bench BenchmarkGroup -benchmem .
//
// On a multi-core machine the parallel path approaches a 1/Nth-analyzer
// wall clock; bytes/op reflects the paged dependence tables (pages
// materialize per touched 4K-word region instead of 8 MiB per analyzer).

// groupTrace captures one benchmark's static analysis and full dynamic
// trace so every iteration replays identical events.
type groupTrace struct {
	prog     *isa.Program
	st       *limits.Static
	events   []vm.Event
	memWords int
}

var groupTraceCache = map[string]*groupTrace{}

func loadGroupTrace(b *testing.B, name string) *groupTrace {
	b.Helper()
	if tr, ok := groupTraceCache[name]; ok {
		return tr
	}
	bm, err := bench.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	asmText, err := minic.Compile(bm.Source(1))
	if err != nil {
		b.Fatal(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		b.Fatal(err)
	}
	machine := vm.NewSized(prog, 1<<20)
	machine.StepLimit = 1 << 32
	prof := predict.NewProfile(prog)
	if err := machine.Run(prof.Record); err != nil {
		b.Fatal(err)
	}
	st, err := limits.NewStatic(prog, prof.Predictor())
	if err != nil {
		b.Fatal(err)
	}
	machine.Reset()
	events := make([]vm.Event, 0, machine.Steps)
	if err := machine.Run(func(ev vm.Event) { events = append(events, ev) }); err != nil {
		b.Fatal(err)
	}
	tr := &groupTrace{prog: prog, st: st, events: events, memWords: len(machine.Mem)}
	groupTraceCache[name] = tr
	return tr
}

// benchGroups builds the same analyzer set RunBenchmark schedules: every
// model with and without perfect unrolling.
func benchGroups(tr *groupTrace) (*limits.Group, *limits.Group, []*limits.Analyzer) {
	unrolled := limits.NewGroup(tr.st, tr.memWords, limits.AllModels(), true)
	plain := limits.NewGroup(tr.st, tr.memWords, limits.AllModels(), false)
	all := make([]*limits.Analyzer, 0, len(unrolled.Analyzers)+len(plain.Analyzers))
	all = append(all, unrolled.Analyzers...)
	all = append(all, plain.Analyzers...)
	return unrolled, plain, all
}

func benchGroupScheduling(b *testing.B, serial bool) {
	for _, name := range []string{"espresso", "ccom"} {
		tr := loadGroupTrace(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				unrolled, _, all := benchGroups(tr)
				if serial {
					err := limits.SerialReplay(context.Background(), func(_ context.Context, visit func(vm.Event)) error {
						for _, ev := range tr.events {
							visit(ev)
						}
						return nil
					}, all...)
					if err != nil {
						b.Fatal(err)
					}
				} else {
					err := limits.Replay(func(visit func(vm.Event)) error {
						for _, ev := range tr.events {
							visit(ev)
						}
						return nil
					}, all...)
					if err != nil {
						b.Fatal(err)
					}
				}
				if rs := unrolled.Results(); rs[0].Cycles == 0 {
					b.Fatal("empty result")
				}
			}
			b.ReportMetric(float64(len(tr.events)), "instrs/op")
		})
	}
}

func BenchmarkGroupSerial(b *testing.B)   { benchGroupScheduling(b, true) }
func BenchmarkGroupParallel(b *testing.B) { benchGroupScheduling(b, false) }

// BenchmarkGroupParallelObserved is BenchmarkGroupParallel with a live
// telemetry registry, for two baselines at once: its ns/op against
// BenchmarkGroupParallel bounds the enabled-path overhead, and its
// ring-* custom metrics land in BENCH_limits.json so wall-clock
// regressions can be checked against ring-occupancy data (a rising
// ring-hwm or stall count explains a slowdown as flow-control pressure
// rather than per-event cost).
func BenchmarkGroupParallelObserved(b *testing.B) {
	for _, name := range []string{"espresso", "ccom"} {
		tr := loadGroupTrace(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var prodStalls, consStalls, hwm int64
			for i := 0; i < b.N; i++ {
				_, _, all := benchGroups(tr)
				m := telemetry.NewRegistry()
				err := limits.ReplayObserved(context.Background(), m, func(ctx context.Context, visit func(vm.Event)) error {
					for _, ev := range tr.events {
						visit(ev)
					}
					return nil
				}, all...)
				if err != nil {
					b.Fatal(err)
				}
				s := m.Snapshot()
				prodStalls += s.Counters["ring.producer_stalls"]
				consStalls += s.Counters["ring.consumer_stalls"]
				if v := s.Gauges["ring.occupancy_hwm"]; v > hwm {
					hwm = v
				}
			}
			b.ReportMetric(float64(len(tr.events)), "instrs/op")
			b.ReportMetric(float64(hwm), "ring-hwm")
			b.ReportMetric(float64(prodStalls)/float64(b.N), "ring-prod-stalls/op")
			b.ReportMetric(float64(consStalls)/float64(b.N), "ring-cons-stalls/op")
		})
	}
}

// populateGroupStore traces the captured benchmark once into a fresh
// trace store and returns the store and the key the entry lives under —
// the untimed setup the cached benchmarks replay against.
func populateGroupStore(b *testing.B, tr *groupTrace, name, dir string) (*tracestore.Store, tracestore.Key) {
	b.Helper()
	store, err := tracestore.Open(iofault.OS(), dir)
	if err != nil {
		b.Fatal(err)
	}
	_, _, all := benchGroups(tr)
	key := tracestore.Key{
		Bench:      name,
		ProgramCRC: tracestore.ProgramCRC(tr.prog),
		Annotation: tr.st.AnnotationFingerprint(),
		Predictors: "profile",
		Lanes:      limits.AssignReplayLanes(all...),
	}
	pop, err := store.BeginPopulate(key, nil)
	if err != nil {
		b.Fatal(err)
	}
	err = limits.SerialReplayWith(context.Background(), pop.Sink(), func(_ context.Context, visit func(vm.Event)) error {
		for _, ev := range tr.events {
			visit(ev)
		}
		return nil
	}, all...)
	if err != nil {
		pop.Abort()
		b.Fatal(err)
	}
	if err := pop.Commit(); err != nil {
		b.Fatal(err)
	}
	return store, key
}

// BenchmarkGroupCached is the warm-path counterpart of
// BenchmarkGroupParallel: the same 7 models × 2 unroll configs, but fed
// from a committed trace-store entry — mmap'd frames stepped through
// each analyzer's specialized stepper behind independent cursors — with
// no VM run, no annotation, and no ring.  Its ns/op against
// BenchmarkGroupParallel is the headline number of the trace store: the
// cost of an analysis pass once tracing is paid for.
func BenchmarkGroupCached(b *testing.B) {
	for _, name := range []string{"espresso", "ccom"} {
		tr := loadGroupTrace(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			store, key := populateGroupStore(b, tr, name, b.TempDir())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				unrolled, _, all := benchGroups(tr)
				rep, err := store.Open(key)
				if err != nil {
					b.Fatal(err)
				}
				if err := rep.Run(context.Background(), false, all...); err != nil {
					b.Fatal(err)
				}
				if err := rep.Close(); err != nil {
					b.Fatal(err)
				}
				if rs := unrolled.Results(); rs[0].Cycles == 0 {
					b.Fatal("empty result")
				}
			}
			b.ReportMetric(float64(len(tr.events)), "instrs/op")
		})
	}
}

// BenchmarkTraceStoreWrite measures the spill path in isolation: the
// captured trace is pre-decoded into columnar chunks once, untimed, so
// each iteration times exactly what a populate adds to a cold run —
// framing, CRCs, the fsync, and the atomic rename (each iteration
// rewrites the same key, replacing the previous entry).
func BenchmarkTraceStoreWrite(b *testing.B) {
	tr := loadGroupTrace(b, "ccom")
	chunks := chunkTrace(tr, limits.SPCDMF)
	store, err := tracestore.Open(iofault.OS(), b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	key := tracestore.Key{
		Bench:      "ccom",
		ProgramCRC: tracestore.ProgramCRC(tr.prog),
		Annotation: tr.st.AnnotationFingerprint(),
		Predictors: "profile",
		Lanes:      1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := store.BeginPopulate(key, nil)
		if err != nil {
			b.Fatal(err)
		}
		sink := pop.Sink()
		for _, c := range chunks {
			if err := sink(c); err != nil {
				b.Fatal(err)
			}
		}
		if err := sink(nil); err != nil {
			b.Fatal(err)
		}
		if err := pop.Commit(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.events)), "instrs/op")
}

// BenchmarkTraceStoreRead measures the warm open-and-stream path with a
// single analyzer: mmap, validate, and walk every frame through one
// SP-CD-MF stepper.  Against BenchmarkAnalyzerStep (the same hot loop
// over pre-decoded in-memory chunks) it bounds the store's own overhead
// — open cost plus any per-frame view arithmetic.
func BenchmarkTraceStoreRead(b *testing.B) {
	tr := loadGroupTrace(b, "ccom")
	store, key := populateGroupStore(b, tr, "ccom", b.TempDir())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := limits.NewAnalyzer(tr.st, limits.SPCDMF, false, tr.memWords)
		rep, err := store.Open(key)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Run(context.Background(), true, a); err != nil {
			b.Fatal(err)
		}
		if err := rep.Close(); err != nil {
			b.Fatal(err)
		}
		if a.Result().Cycles == 0 {
			b.Fatal("empty result")
		}
	}
	b.ReportMetric(float64(len(tr.events)), "instrs/op")
}

// chunkTrace pre-decodes a captured trace into columnar chunks with a
// throwaway analyzer of the same (Static, lane 0) shape every fresh
// analyzer gets — the producer's job in a replay, done once outside the
// timed region.
func chunkTrace(tr *groupTrace, m limits.Model) []*limits.Chunk {
	an := limits.NewAnnotator(limits.NewAnalyzer(tr.st, m, false, tr.memWords))
	var chunks []*limits.Chunk
	c := limits.NewChunk(limits.ChunkEvents)
	for _, ev := range tr.events {
		c.Append(an.Annotate(ev))
		if c.Len() == limits.ChunkEvents {
			chunks = append(chunks, c)
			c = limits.NewChunk(limits.ChunkEvents)
		}
	}
	if c.Len() > 0 {
		chunks = append(chunks, c)
	}
	return chunks
}

// BenchmarkAnalyzerStep measures one analyzer's columnar hot loop per
// machine model over the captured ccom trace: events are pre-decoded
// into chunks once outside the timed region, so ns/op isolates
// StepChunk — the generated per-model stepper whose cost the slowest
// ring consumer bounds the whole parallel replay with.
func BenchmarkAnalyzerStep(b *testing.B) {
	tr := loadGroupTrace(b, "ccom")
	for _, m := range limits.AllModels() {
		b.Run(m.String(), func(b *testing.B) {
			b.ReportAllocs()
			chunks := chunkTrace(tr, m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := limits.NewAnalyzer(tr.st, m, false, tr.memWords)
				for _, c := range chunks {
					a.StepChunk(c)
				}
				if a.Result().Cycles == 0 {
					b.Fatal("empty result")
				}
			}
			b.ReportMetric(float64(len(tr.events)), "instrs/op")
		})
	}
}

// BenchmarkAnnotate measures the producer-side pre-decode path in
// isolation: one Annotator pass streaming the captured trace into a
// recycled columnar chunk, exactly the per-event work the replay
// producer performs between VM dispatch and ring publish.  With the
// analyzer hot loops specialized, this is the floor the producer puts
// under every replay — it is gated in BENCH_limits.json so the
// annotator cannot silently regress behind the analyzer wins.
func BenchmarkAnnotate(b *testing.B) {
	for _, name := range []string{"espresso", "ccom"} {
		tr := loadGroupTrace(b, name)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			// One speculative analyzer pins the common lane shape (all
			// harness analyzers share one Static, hence one lane).
			a := limits.NewAnalyzer(tr.st, limits.SPCDMF, false, tr.memWords)
			c := limits.NewChunk(limits.ChunkEvents)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// The outcome streams are single-pass: a fresh Annotator
				// per iteration, as every replay creates one.
				an := limits.NewAnnotator(a)
				for _, ev := range tr.events {
					c.Append(an.Annotate(ev))
					if c.Len() == limits.ChunkEvents {
						c.Reset()
					}
				}
				c.Reset()
			}
			b.ReportMetric(float64(len(tr.events)), "instrs/op")
		})
	}
}

// BenchmarkPipelineSingle measures the per-benchmark pipeline cost under
// all models — the unit of work every table above is built from.
func BenchmarkPipelineSingle(b *testing.B) {
	for _, name := range []string{"ccom", "espresso", "matrix300"} {
		bm, err := bench.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunBenchmark(bm, harness.Options{Scale: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
