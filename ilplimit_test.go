package ilplimit_test

import (
	"fmt"
	"log"
	"strings"
	"testing"

	"ilplimit"
)

const facadeProgram = `
int data[64];
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 64; i++) data[i] = (i * 29) & 63;
	for (i = 0; i < 64; i++) {
		if (data[i] > 31) s += data[i];
	}
	print(s);
	return 0;
}
`

func TestMeasureFacade(t *testing.T) {
	results, err := ilplimit.Measure(facadeProgram, ilplimit.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ilplimit.AllModels()) {
		t.Fatalf("got %d results, want %d", len(results), len(ilplimit.AllModels()))
	}
	byModel := map[ilplimit.Model]ilplimit.Result{}
	for _, r := range results {
		byModel[r.Model] = r
	}
	if byModel[ilplimit.Oracle].Cycles > byModel[ilplimit.Base].Cycles {
		t.Error("ORACLE slower than BASE")
	}
	// Restricting models and toggling options work.
	some, err := ilplimit.Measure(facadeProgram, ilplimit.MeasureOptions{
		Models:           []ilplimit.Model{ilplimit.SP},
		DisableUnrolling: true,
		Optimize:         true,
		IfConvert:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 1 || some[0].Model != ilplimit.SP || some[0].Unrolled {
		t.Errorf("restricted measure wrong: %+v", some)
	}
}

func TestRunAndCompileFacade(t *testing.T) {
	out, err := ilplimit.Run(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out) == "" {
		t.Error("program printed nothing")
	}
	asmText, err := ilplimit.Compile(facadeProgram)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asmText, ".proc main") {
		t.Error("assembly missing main")
	}
	if _, err := ilplimit.Compile("int main( {"); err == nil {
		t.Error("bad program compiled")
	}
}

func TestBenchmarkAccessors(t *testing.T) {
	names := ilplimit.BenchmarkNames()
	if len(names) != 10 || names[0] != "awk" || names[9] != "tomcatv" {
		t.Errorf("names = %v", names)
	}
	src, err := ilplimit.BenchmarkSource("espresso", 1)
	if err != nil || !strings.Contains(src, "int main") {
		t.Errorf("BenchmarkSource: %v", err)
	}
	if _, err := ilplimit.BenchmarkSource("nope", 1); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if !strings.Contains(ilplimit.Table1(), "espresso") {
		t.Error("Table1 missing espresso")
	}
}

// Example measures a small program under three machine models — the
// package-level quickstart.
func Example() {
	results, err := ilplimit.Measure(`
int main() {
	int i, s;
	s = 1;
	for (i = 0; i < 6; i++) s = s + s;
	print(s);
	return 0;
}
`, ilplimit.MeasureOptions{
		Models: []ilplimit.Model{ilplimit.Base, ilplimit.SPCDMF, ilplimit.Oracle},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s schedules %d instructions\n", r.Model, r.Instructions)
	}
	// Output:
	// BASE schedules 27 instructions
	// SP-CD-MF schedules 27 instructions
	// ORACLE schedules 27 instructions
}
