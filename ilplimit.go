package ilplimit

import (
	"context"
	"fmt"

	"ilplimit/internal/asm"
	"ilplimit/internal/bench"
	"ilplimit/internal/harness"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/opt"
	"ilplimit/internal/predict"
	"ilplimit/internal/telemetry"
	"ilplimit/internal/vm"
)

// MetricsRegistry re-exports the telemetry registry so Measure callers
// can opt into pipeline instrumentation without importing an internal
// package; NewMetricsRegistry constructs one.  A nil registry (the
// default) keeps every hot path on its nil-check fast path.
type MetricsRegistry = telemetry.Registry

// MetricsSnapshot is the immutable capture type returned by
// MetricsRegistry.Snapshot; SuiteResult and BenchResult embed it when a
// run collects telemetry.
type MetricsSnapshot = telemetry.Snapshot

// NewMetricsRegistry creates an empty metrics registry for
// MeasureOptions.Metrics / SuiteOptions.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Model selects one of the paper's seven abstract machines.
type Model = limits.Model

// The seven machine models, in the paper's order.
const (
	Base   = limits.Base
	CD     = limits.CD
	CDMF   = limits.CDMF
	SP     = limits.SP
	SPCD   = limits.SPCD
	SPCDMF = limits.SPCDMF
	Oracle = limits.Oracle
)

// AllModels lists the seven machines in the paper's order.
func AllModels() []Model { return limits.AllModels() }

// Result reports one (program, machine model) analysis.
type Result = limits.Result

// ErrCanceled reports a run aborted by its context's cancellation or
// deadline; test with errors.Is.
var ErrCanceled = vm.ErrCanceled

// BenchFailure records one benchmark that errored or panicked during a
// suite run.
type BenchFailure = harness.BenchFailure

// SuiteError aggregates the failed benchmarks of a degraded suite run.
// RunSuite returns it (extract with errors.As) alongside the partial
// SuiteResult, so callers can render what survived.
type SuiteError = harness.SuiteError

// MeasureOptions configure Measure.
type MeasureOptions struct {
	// Context cancels or deadlines the measurement; Measure then returns
	// an error wrapping ErrCanceled.  Nil means context.Background().
	Context context.Context
	// Models restricts the analysis (default: all seven).
	Models []Model
	// PerfectUnrolling applies the paper's perfect-loop-unrolling trace
	// transformation (the main configuration of Table 3).  Default true.
	// Set DisableUnrolling to turn it off.
	DisableUnrolling bool
	// Optimize runs the post-codegen optimizer before analysis.
	Optimize bool
	// IfConvert enables guarded-instruction if-conversion in the compiler.
	IfConvert bool
	// MemWords sizes the simulated memory (default 1<<20 words).
	MemWords int
	// StepLimit bounds execution (default 1<<32 instructions).
	StepLimit int64
	// Serial steps every analyzer in a single goroutine instead of the
	// default parallel chunked replay.  Results are identical either way.
	Serial bool
	// Metrics, when non-nil, collects pipeline telemetry (VM counters
	// under "vm.profile." / "vm.analysis.", replay-ring statistics under
	// "ring."); capture values with Metrics.Snapshot() after Measure
	// returns.  Nil (the default) disables all instrumentation at
	// nil-check cost.  See internal/telemetry and DESIGN.md §9.
	Metrics *telemetry.Registry
}

// Measure compiles a mini-C program, profiles its branches with the same
// input (the paper's static prediction upper bound), and schedules its
// trace under the requested machine models.  Results arrive in model
// order.
func Measure(source string, o MeasureOptions) ([]Result, error) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Models == nil {
		o.Models = limits.AllModels()
	}
	if o.MemWords == 0 {
		o.MemWords = 1 << 20
	}
	if o.StepLimit == 0 {
		o.StepLimit = 1 << 32
	}
	asmText, err := minic.CompileOpts(source, minic.Options{IfConvert: o.IfConvert})
	if err != nil {
		return nil, err
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		return nil, err
	}
	if o.Optimize {
		or, err := opt.Optimize(prog)
		if err != nil {
			return nil, err
		}
		prog = or.Program
	}
	machine := vm.NewSized(prog, o.MemWords)
	machine.StepLimit = o.StepLimit
	machine.Metrics = o.Metrics.WithPrefix("vm.profile.")
	prof := predict.NewProfile(prog)
	if err := machine.RunContext(ctx, prof.Record); err != nil {
		return nil, fmt.Errorf("profile run: %w", err)
	}
	st, err := limits.NewStatic(prog, prof.Predictor())
	if err != nil {
		return nil, err
	}
	machine.Reset()
	machine.Metrics = o.Metrics.WithPrefix("vm.analysis.")
	group := limits.NewGroup(st, len(machine.Mem), o.Models, !o.DisableUnrolling)
	if o.Serial {
		err = machine.RunContext(ctx, group.Visitor())
	} else {
		err = group.RunObserved(ctx, o.Metrics, machine.RunContext)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis run: %w", err)
	}
	return group.Results(), nil
}

// Compile translates mini-C source to textual assembly for the study's
// MIPS-like ISA.
func Compile(source string) (string, error) { return minic.Compile(source) }

// Run compiles and executes a mini-C program, returning what it printed.
func Run(source string) (string, error) {
	asmText, err := minic.Compile(source)
	if err != nil {
		return "", err
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		return "", err
	}
	machine := vm.New(prog)
	machine.StepLimit = 1 << 32
	if err := machine.Run(nil); err != nil {
		return "", err
	}
	return machine.Output(), nil
}

// SuiteOptions configure RunSuite.
type SuiteOptions = harness.Options

// SuiteResult aggregates the whole benchmark suite; its methods render the
// paper's tables and figures (Table2, Table3, Table4, Figure4…Figure7,
// Report).
type SuiteResult = harness.SuiteResult

// RunSuite reproduces the paper's experiments over the ten-benchmark
// suite.
func RunSuite(o SuiteOptions) (*SuiteResult, error) { return harness.RunSuite(o) }

// Table1 renders the paper's benchmark inventory.
func Table1() string { return harness.Table1() }

// BenchmarkNames lists the suite in the paper's Table 1 order.
func BenchmarkNames() []string {
	var names []string
	for _, b := range bench.All() {
		names = append(names, b.Name)
	}
	return names
}

// BenchmarkSource returns a suite benchmark's generated mini-C source at
// the given scale (>= 1).
func BenchmarkSource(name string, scale int) (string, error) {
	b, err := bench.ByName(name)
	if err != nil {
		return "", err
	}
	return b.Source(scale), nil
}
