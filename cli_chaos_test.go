package ilplimit_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// chaosSeeds returns the soak's seed list: ILP_CHAOS_SEEDS (comma-
// separated) or the pinned defaults.  Pinned seeds keep CI reproducible;
// the env override lets a local soak sweep wider.
func chaosSeeds(t *testing.T) []string {
	t.Helper()
	spec := os.Getenv("ILP_CHAOS_SEEDS")
	if spec == "" {
		spec = "7,23"
	}
	var seeds []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) == 0 {
		t.Fatalf("ILP_CHAOS_SEEDS %q contains no seeds", spec)
	}
	return seeds
}

// stripNotes drops journal note records — free-text annotations failed
// chaos attempts leave behind ("run degraded: ...") — keeping only the
// result-bearing lines that must match a clean run byte for byte.
func stripNotes(journal []byte) []byte {
	var out []byte
	for _, line := range bytes.SplitAfter(journal, []byte("\n")) {
		f := bytes.SplitN(line, []byte(" "), 4)
		if len(f) >= 3 && string(f[2]) == "note" {
			continue
		}
		out = append(out, line...)
	}
	return out
}

// TestCLIChaosSoak is the chaos gate: for every pinned seed, rerun the
// suite under a derived fault schedule — VM traps, analyzer panics,
// slow consumers, and journal write faults — until an attempt exits
// clean, then require its stdout and salvaged journal byte-identical to
// an undisturbed run.  Each attempt derives a fresh sub-seed so an
// attempt that died to a disk fault does not meet the identical fault
// at the identical offset forever.
func TestCLIChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	benches := "awk,eqntott"

	dirL := t.TempDir()
	ref, err := exec.Command(bin, "-bench", benches, "-json", "-resume", dirL).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJournal, err := os.ReadFile(filepath.Join(dirL, "journal.ilpj"))
	if err != nil {
		t.Fatal(err)
	}

	for _, seed := range chaosSeeds(t) {
		t.Run("seed"+seed, func(t *testing.T) {
			dir := t.TempDir()
			const attempts = 5
			var fired []string
			for attempt := 1; ; attempt++ {
				if attempt > attempts {
					t.Fatalf("no clean run within %d chaos attempts; fired: %v", attempts, fired)
				}
				// seed*100+attempt: a deterministic family, so the soak is
				// reproducible but consecutive attempts draw different
				// fault schedules against the same surviving journal.
				derived := fmt.Sprintf("%s%02d", seed, attempt)
				cmd := exec.Command(bin, "-bench", benches, "-json",
					"-chaos", derived, "-resume", dir)
				var stdout, stderr bytes.Buffer
				cmd.Stdout, cmd.Stderr = &stdout, &stderr
				runErr := cmd.Run()
				for _, line := range strings.Split(stderr.String(), "\n") {
					if strings.Contains(line, "fired:") {
						fired = append(fired, strings.TrimSpace(line))
					}
				}
				if runErr != nil {
					t.Logf("attempt %d (chaos %s) failed as scheduled: %v", attempt, derived, runErr)
					continue
				}
				if got := stdout.Bytes(); !bytes.Equal(got, ref) {
					t.Fatalf("attempt %d converged but stdout differs from the clean run (%d vs %d bytes)", attempt, len(got), len(ref))
				}
				break
			}
			chaosJournal, err := os.ReadFile(filepath.Join(dir, "journal.ilpj"))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := stripNotes(chaosJournal), stripNotes(refJournal); !bytes.Equal(got, want) {
				t.Errorf("chaos journal (notes stripped) differs from clean run (%d vs %d bytes)", len(got), len(want))
			}
			t.Logf("fired: %v", fired)
		})
	}
}

// startCoordinatorAt launches a coordinator bound to a specific
// address, retrying while the previous (killed) incarnation's port is
// released by the kernel.
func startCoordinatorAt(t *testing.T, bin, addr string, args ...string) *coordProc {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		c := &coordProc{cmd: exec.Command(bin, append([]string{"-coordinator", addr}, args...)...)}
		c.cmd.Stdout = &c.stdout
		out, err := c.cmd.StderrPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.cmd.Start(); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		var text strings.Builder
		for c.addr == "" {
			n, rerr := out.Read(buf)
			text.Write(buf[:n])
			if _, rest, ok := strings.Cut(text.String(), "coordinator listening on "); ok {
				if i := strings.IndexByte(rest, '\n'); i >= 0 {
					c.addr = strings.TrimSpace(rest[:i])
				}
			}
			if rerr != nil {
				break
			}
		}
		c.mu.Lock()
		c.stderr.WriteString(text.String())
		c.mu.Unlock()
		if c.addr != "" {
			t.Cleanup(func() {
				if c.cmd.ProcessState == nil {
					_ = c.cmd.Process.Kill()
					_ = c.cmd.Wait()
				}
			})
			c.drain.Add(1)
			go func() {
				defer c.drain.Done()
				buf := make([]byte, 4096)
				for {
					n, err := out.Read(buf)
					c.mu.Lock()
					c.stderr.Write(buf[:n])
					c.mu.Unlock()
					if err != nil {
						return
					}
				}
			}()
			return c
		}
		// Bind failed (address still in TIME_WAIT teardown); reap and retry.
		_ = c.cmd.Wait()
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never rebound %s; stderr:\n%s", addr, text.String())
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestCLICoordinatorKillResume is the coordinator-crash acceptance
// check: SIGKILL the coordinator after at least one distributed cell
// completed, restart it on the same address with the same -resume
// directory, and require the finished run's stdout and journal
// byte-identical to an uninterrupted local run — with the original
// worker surviving the outage on its rejoin backoff.
func TestCLICoordinatorKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	binw := buildCmd(t, "ilplimitw")
	benches := "awk,eqntott,irsim"

	dirL, dirD := t.TempDir(), t.TempDir()
	ref, err := exec.Command(bin, "-bench", benches, "-json", "-resume", dirL).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	first := startCoordinator(t, bin, "-coordinator", "127.0.0.1:0", "-bench", benches, "-json", "-resume", dirD, "-v")
	worker := exec.Command(binw, "-coordinator", first.addr, "-id", "w1", "-rejoin", "30s", "-poll", "25ms")
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}

	// Kill once the recovery journal holds at least one admitted
	// completion: provably mid-run (cells remain), with recovery state
	// on disk for the next incarnation.
	recovery := filepath.Join(dirD, "coordinator.ilpj")
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if data, err := os.ReadFile(recovery); err == nil && bytes.Contains(data, []byte(" cell ")) {
			break
		}
		if time.Now().After(deadline) {
			_ = worker.Process.Kill()
			t.Fatalf("no completion ever persisted to %s; coordinator stderr:\n%s", recovery, first.stderrText())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := first.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = first.cmd.Wait()
	first.drain.Wait()

	second := startCoordinatorAt(t, bin, first.addr, "-bench", benches, "-json", "-resume", dirD, "-v")
	if err := second.wait(); err != nil {
		_ = worker.Process.Kill()
		t.Fatalf("restarted coordinator: %v\n%s", err, second.stderrText())
	}
	if err := worker.Wait(); err != nil {
		t.Errorf("worker across coordinator restart: %v", err)
	}

	if got := second.stdout.Bytes(); !bytes.Equal(got, ref) {
		t.Errorf("resumed distributed stdout differs from local run (%d vs %d bytes)", len(got), len(ref))
	}
	jl, err := os.ReadFile(filepath.Join(dirL, "journal.ilpj"))
	if err != nil {
		t.Fatal(err)
	}
	jd, err := os.ReadFile(filepath.Join(dirD, "journal.ilpj"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jl, jd) {
		t.Errorf("resumed distributed journal differs from local run (%d vs %d bytes)", len(jd), len(jl))
	}
	if se := second.stderrText(); !strings.Contains(se, "recovered") {
		t.Errorf("restarted coordinator never reported recovered state:\n%s", se)
	}
	// The kill must really have been a SIGKILL mid-run, not a clean exit.
	if ps := first.cmd.ProcessState; ps == nil || ps.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Errorf("first coordinator did not die to SIGKILL: %v", first.cmd.ProcessState)
	}
}
