// Command ilplimit reproduces the experiments of Lam & Wilson, "Limits of
// Control Flow on Parallelism" (ISCA 1992): it compiles the benchmark
// suite, simulates the traces under the seven abstract machine models, and
// prints the paper's tables and figures.
//
// Usage:
//
//	ilplimit                         # everything: tables 1-4, figures 4-7
//	ilplimit -table 3                # one table
//	ilplimit -figure 6               # one figure
//	ilplimit -bench espresso         # restrict the suite to one benchmark
//	ilplimit -bench awk,ccom,latex   # or to a comma-separated list
//	ilplimit -scale 4                # larger workloads
//	ilplimit -serial                 # single-goroutine analysis (debugging/measurement)
//	ilplimit -timeout 2m             # abort cleanly if the run exceeds a deadline
//	ilplimit -metrics                # pipeline telemetry report after the run
//	ilplimit -debug-addr 127.0.0.1:6060  # live expvar + pprof during the run
//	ilplimit -resume state/          # crash-safe run: journal results, skip completed ones
//	ilplimit -retries 2              # re-run transiently-failed benchmarks
//	ilplimit -watchdog 30s           # detach analyzers making no chunk progress
//	ilplimit -coordinator :7070      # distribute the suite across ilplimitw workers
//	ilplimit -chaos 7 -resume state/ # seeded fault injection: pipeline + disk faults
//	ilplimit -v                      # progress on stderr
//
// When some benchmarks fail and others succeed, the surviving results are
// still rendered, a per-benchmark failure summary goes to stderr, and the
// process exits non-zero.
//
// -resume names a directory holding the run journal: every completed
// benchmark is checkpointed there (checksummed and fsync'd), and a rerun
// after a crash — even kill -9 — skips the journaled benchmarks and
// reproduces the uninterrupted run's output byte for byte.  The journal
// is bound to the result-affecting configuration (scale, models,
// benchmark list, step limit); resuming with a different configuration
// is refused.  -resume cannot be combined with -study, whose passes vary
// the configuration per run.
//
// -coordinator turns the run into the coordinator of a distributed
// fabric: instead of analyzing benchmarks in-process, it serves the
// suite's cells over HTTP to ilplimitw worker processes and merges
// their streamed-back results.  The rendered output — and the journal,
// when -resume is also given — is byte-identical to a single-process
// run of the same configuration (telemetry timings excepted).  See
// DESIGN.md §13.
//
// With -resume, the coordinator additionally persists every lease grant
// and admitted completion to a recovery journal (coordinator.ilpj) in
// the resume directory, so a coordinator killed mid-run — even kill -9
// — and restarted with the same -coordinator -resume flags reconstructs
// its queue and lease table and finishes the run byte-identical to an
// uninterrupted one.  Workers retry through the outage with jittered
// backoff (see ilplimitw -rejoin) instead of failing their cells.
//
// -chaos arms a seeded fault schedule for resilience soaks: each
// benchmark may get a deterministic VM trap, analyzer panic, or slow
// consumer, and the -resume journal's filesystem injects a small budget
// of write faults (EIO, ENOSPC, short writes).  All scheduled faults
// are transient: the run converges to byte-identical output through the
// retry and salvage machinery it is exercising.  Implies -retries 2
// when -retries is unset; the schedule and a fired-fault summary go to
// stderr.  See DESIGN.md §14 and `make soak-chaos`.
package main

import (
	"context"
	"encoding/json"
	"errors"
	_ "expvar" // registers /debug/vars on the -debug-addr server
	"flag"
	"fmt"
	"io"
	"net"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr server
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"ilplimit/internal/bench"
	"ilplimit/internal/fabric"
	"ilplimit/internal/faultinject"
	"ilplimit/internal/harness"
	"ilplimit/internal/httpserve"
	"ilplimit/internal/iofault"
	"ilplimit/internal/journal"
	"ilplimit/internal/limits"
	"ilplimit/internal/telemetry"
)

// jnl is the run journal when -resume is active, package-level so fail()
// can record why a run ended before exiting: an interrupted journal then
// explains itself when inspected or resumed.
var jnl *journal.Journal

// shutdownFabric tears down the -coordinator fabric (finish, drain
// workers, close the listener); a no-op otherwise.  Package-level and
// idempotent because the degraded-suite path and fail() exit through
// os.Exit, which skips defers — every exit path calls it explicitly.
var shutdownFabric = func() {}

// chaos is the -chaos fault schedule, package-level so every exit path
// (including fail) can report which faults actually fired.
var chaos *faultinject.Chaos

// reportChaos prints the fired-fault summary on stderr once per run.
func reportChaos() {
	if chaos != nil {
		fmt.Fprint(os.Stderr, "ilplimit: "+chaos.FiredSummary())
		chaos = nil
	}
}

func main() {
	var (
		table     = flag.Int("table", 0, "print only this table (1-4)")
		figure    = flag.Int("figure", 0, "print only this figure (4-7)")
		study     = flag.String("study", "", "run an ablation study: prediction, window, latency, guarded, quality, width, or scale")
		name      = flag.String("bench", "", "run only this benchmark (name or unique prefix)")
		scale     = flag.Int("scale", 1, "workload scale factor (>= 1)")
		optimize  = flag.Bool("opt", false, "run the post-codegen optimizer before analysis")
		serial    = flag.Bool("serial", false, "step all analyzers in one goroutine instead of the parallel chunked replay")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		timeout   = flag.Duration("timeout", 0, "abort the whole run after this duration (e.g. 30s; 0 = no limit)")
		metrics   = flag.Bool("metrics", false, "print a pipeline telemetry report (stage timings, VM throughput, ring stats) after the run")
		debug     = flag.String("debug-addr", "", "serve expvar and net/http/pprof on this address (e.g. 127.0.0.1:6060) for the lifetime of the run")
		resume    = flag.String("resume", "", "journal completed benchmarks in this directory and skip ones already journaled by an interrupted run")
		retries   = flag.Int("retries", 0, "re-run a transiently-failed benchmark up to this many extra times")
		watchdog  = flag.Duration("watchdog", 0, "detach an analyzer making no chunk progress for this long and fail its benchmark (0 = off)")
		chaosSeed = flag.Int64("chaos", 0, "arm a seeded chaos schedule: deterministic pipeline faults per benchmark plus journal I/O faults with -resume (0 = off; implies -retries 2 when -retries is unset)")
		traceDir  = flag.String("trace-cache", "", "persistent annotated trace store directory: warm entries replay zero-copy with no VM run, cold runs populate it (results are byte-identical either way)")
		coord     = flag.String("coordinator", "", "serve the suite's cells to ilplimitw workers on this address (e.g. :7070) instead of analyzing in-process")
		lease     = flag.Duration("fabric-lease", 10*time.Second, "requeue a distributed cell whose worker misses heartbeats for this long (with -coordinator)")
		drain     = flag.Duration("fabric-drain", 2*time.Second, "after a distributed run, keep answering workers for this long so they exit cleanly (with -coordinator)")
		verbose   = flag.Bool("v", false, "log pipeline progress to stderr")
		version   = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("ilplimit %s %s\n", telemetry.GitRevision(), runtime.Version())
		return
	}

	if *table == 1 {
		fmt.Print(harness.Table1())
		return
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	opt := harness.Options{
		Scale: *scale, Progress: progress, Models: limits.AllModels(),
		Optimize: *optimize, Serial: *serial,
		Retries: *retries, Watchdog: *watchdog,
		TraceStore: *traceDir,
	}
	if *name != "" {
		// A restricted benchmark list still runs through RunSuite, so
		// journaling, retries, and degraded rendering all apply to it.
		for _, n := range strings.Split(*name, ",") {
			b, err := bench.ByName(strings.TrimSpace(n))
			if err != nil {
				fail(err)
			}
			opt.Benchmarks = append(opt.Benchmarks, b)
		}
	}
	if *chaosSeed != 0 {
		if *study != "" {
			fail(fmt.Errorf("-chaos cannot be combined with -study: the chaos schedule is bound to one suite configuration"))
		}
		if *coord != "" {
			fail(fmt.Errorf("-chaos cannot be combined with -coordinator: chaos faults inject into the in-process pipeline"))
		}
		benches := opt.Benchmarks
		if len(benches) == 0 {
			benches = bench.All()
		}
		names := make([]string, len(benches))
		for i, b := range benches {
			names[i] = b.Name
		}
		chaos = faultinject.NewChaos(*chaosSeed, names)
		opt.Faults = chaos.BenchPlan
		if opt.Retries == 0 {
			// A chaos run schedules transient faults; without a retry
			// budget every armed benchmark would simply fail.
			opt.Retries = 2
		}
		if progress != nil {
			fmt.Fprint(progress, chaos.String())
		}
	}
	if *resume != "" {
		if *study != "" {
			fail(fmt.Errorf("-resume cannot be combined with -study: study passes vary the configuration the journal is bound to"))
		}
		// A chaos run's journal lives on a fault-injecting filesystem —
		// the same schedule every time for the same seed.
		fsys := iofault.OS()
		if chaos != nil {
			fsys = iofault.Wrap(fsys, chaos.IOPlan())
		}
		j, err := journal.OpenFS(fsys, *resume, opt.JournalMeta(telemetry.GitRevision()))
		if err != nil {
			fail(err)
		}
		jnl = j
		opt.Journal = j
		if n := j.Recovered(); n > 0 && progress != nil {
			fmt.Fprintf(progress, "ilplimit: journal holds %d completed benchmark(s); resuming\n", n)
		}
		if t := j.Truncated(); t > 0 {
			fmt.Fprintf(os.Stderr, "ilplimit: journal: dropped %d corrupt tail byte(s) from an interrupted write\n", t)
		}
	}
	if *metrics || *debug != "" {
		opt.Metrics = telemetry.NewRegistry()
		// The report covers every benchmark the process ran — including
		// a study's repeated suite passes — so print it on all exits
		// after the run, not just the default path.
		// Note: fail() and the degraded-suite exit use os.Exit, which
		// skips this defer — the report covers successful runs only.
		if *metrics {
			defer func() { fmt.Print(harness.MetricsReport(opt.Metrics.Snapshot())) }()
		}
	}
	if *debug != "" {
		// Serve live metrics for the lifetime of the run.  -timeout only
		// cancels the measurement context; the server stays up until the
		// process exits, so a profile capture racing the deadline still
		// completes.  The bound address is announced on stderr because
		// ":0" picks an ephemeral port.
		opt.Metrics.PublishExpvar("ilplimit")
		ln, err := net.Listen("tcp", *debug)
		if err != nil {
			fail(fmt.Errorf("debug-addr %s: %w", *debug, err))
		}
		// nil handler = DefaultServeMux, where expvar and pprof live; a
		// deferred graceful Shutdown lets an in-flight scrape finish
		// before the process exits.
		dbg := httpserve.Start(ln, nil, httpserve.Options{})
		fmt.Fprintf(os.Stderr, "ilplimit: debug server listening on %s\n", dbg.Addr())
		defer func() { _ = dbg.Shutdown(time.Second) }()
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opt.Context = ctx
	}
	if *coord != "" {
		if *study != "" {
			fail(fmt.Errorf("-coordinator cannot be combined with -study: study passes vary the configuration workers are fingerprinted against"))
		}
		// With -resume, grants and completions also persist to a recovery
		// journal beside the run journal, so a SIGKILLed coordinator
		// restarted with the same flags resumes the distributed run.
		var recovery *journal.Journal
		if *resume != "" {
			rj, err := journal.OpenNamed(iofault.OS(), *resume, "coordinator.ilpj", opt.JournalMeta(telemetry.GitRevision()))
			if err != nil {
				fail(fmt.Errorf("coordinator recovery journal: %w", err))
			}
			recovery = rj
		}
		c := fabric.NewCoordinator(opt.JournalMeta(telemetry.GitRevision()), fabric.CoordinatorOptions{
			LeaseTTL: *lease, Watchdog: opt.Watchdog,
			Metrics: opt.Metrics, Progress: progress,
			Recovery: recovery,
		})
		ln, err := net.Listen("tcp", *coord)
		if err != nil {
			fail(fmt.Errorf("coordinator %s: %w", *coord, err))
		}
		fsrv := httpserve.Start(ln, c.Handler(), httpserve.Options{})
		// Announced on stderr because ":0" picks an ephemeral port; tests
		// and scripts scrape this line to point workers at the run.
		fmt.Fprintf(os.Stderr, "ilplimit: coordinator listening on %s\n", fsrv.Addr())
		c.Start()
		opt.CellRunner = c.RunCell
		drainFor := *drain
		var once sync.Once
		shutdownFabric = func() {
			once.Do(func() {
				c.Finish()
				c.WaitDrained(drainFor)
				_ = fsrv.Shutdown(time.Second)
				c.Close()
				if recovery != nil {
					_ = recovery.Close()
				}
			})
		}
		defer shutdownFabric()
	}

	switch *study {
	case "":
	case "prediction":
		s, err := harness.RunPredictionStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "window":
		s, err := harness.RunWindowStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "latency":
		s, err := harness.RunLatencyStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "guarded":
		s, err := harness.RunGuardedStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "quality":
		s, err := harness.RunQualityStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "width":
		s, err := harness.RunWidthStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "scale":
		s, err := harness.RunScaleStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	default:
		fail(fmt.Errorf("unknown study %q (want prediction, window, latency, guarded, quality, width, or scale)", *study))
	}

	// A degraded suite (some benchmarks failed, some succeeded) still
	// renders whatever survived; the failure summary goes to stderr and
	// the process exits non-zero.
	var degraded *harness.SuiteError
	suite, err := harness.RunSuite(opt)
	// Release distributed workers before rendering: the suite is merged,
	// so the fabric has nothing left to serve but "done".
	shutdownFabric()
	if err != nil && !errors.As(err, &degraded) {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suite); err != nil {
			fail(err)
		}
	} else {
		switch {
		case *table == 2:
			fmt.Print(suite.Table2())
		case *table == 3:
			fmt.Print(suite.Table3())
		case *table == 4:
			fmt.Print(suite.Table4())
		case *table != 0:
			fail(fmt.Errorf("unknown table %d", *table))
		case *figure == 4:
			fmt.Print(suite.Figure4())
		case *figure == 5:
			fmt.Print(suite.Figure5())
		case *figure == 6:
			fmt.Print(suite.Figure6())
		case *figure == 7:
			fmt.Print(suite.Figure7())
		case *figure != 0:
			fail(fmt.Errorf("unknown figure %d", *figure))
		default:
			fmt.Print(suite.Report())
		}
	}

	if degraded != nil {
		fmt.Fprintln(os.Stderr, "ilplimit:", degraded)
		fmt.Fprint(os.Stderr, suite.FailureSummary())
		if jnl != nil {
			_ = jnl.AppendNote("run degraded: " + degraded.Error())
			_ = jnl.Close()
		}
		reportChaos()
		shutdownFabric()
		os.Exit(1)
	}
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ilplimit: journal:", err)
		}
	}
	reportChaos()
}

// fail reports a fatal error on stderr and exits non-zero.  When a run
// journal is open it records the reason first, so an interrupted -resume
// directory explains why its run ended.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilplimit:", err)
	if jnl != nil {
		_ = jnl.AppendNote("run failed: " + err.Error())
		_ = jnl.Close()
	}
	reportChaos()
	shutdownFabric()
	os.Exit(1)
}
