// Command ilplimit reproduces the experiments of Lam & Wilson, "Limits of
// Control Flow on Parallelism" (ISCA 1992): it compiles the benchmark
// suite, simulates the traces under the seven abstract machine models, and
// prints the paper's tables and figures.
//
// Usage:
//
//	ilplimit                         # everything: tables 1-4, figures 4-7
//	ilplimit -table 3                # one table
//	ilplimit -figure 6               # one figure
//	ilplimit -bench espresso         # restrict the suite to one benchmark
//	ilplimit -scale 4                # larger workloads
//	ilplimit -serial                 # single-goroutine analysis (debugging/measurement)
//	ilplimit -v                      # progress on stderr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"ilplimit/internal/bench"
	"ilplimit/internal/harness"
	"ilplimit/internal/limits"
)

func main() {
	var (
		table    = flag.Int("table", 0, "print only this table (1-4)")
		figure   = flag.Int("figure", 0, "print only this figure (4-7)")
		study    = flag.String("study", "", "run an ablation study: prediction, window, latency, guarded, quality, or width")
		name     = flag.String("bench", "", "run only this benchmark (name or unique prefix)")
		scale    = flag.Int("scale", 1, "workload scale factor (>= 1)")
		optimize = flag.Bool("opt", false, "run the post-codegen optimizer before analysis")
		serial   = flag.Bool("serial", false, "step all analyzers in one goroutine instead of the parallel chunked replay")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		verbose  = flag.Bool("v", false, "log pipeline progress to stderr")
	)
	flag.Parse()

	if *table == 1 {
		fmt.Print(harness.Table1())
		return
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	opt := harness.Options{Scale: *scale, Progress: progress, Models: limits.AllModels(), Optimize: *optimize, Serial: *serial}

	switch *study {
	case "":
	case "prediction":
		s, err := harness.RunPredictionStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "window":
		s, err := harness.RunWindowStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "latency":
		s, err := harness.RunLatencyStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "guarded":
		s, err := harness.RunGuardedStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "quality":
		s, err := harness.RunQualityStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "width":
		s, err := harness.RunWidthStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	case "scale":
		s, err := harness.RunScaleStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Print(s.Render())
		return
	default:
		fail(fmt.Errorf("unknown study %q (want prediction, window, latency, guarded, quality, width, or scale)", *study))
	}

	suite := &harness.SuiteResult{Models: opt.Models}
	if *name != "" {
		b, err := bench.ByName(*name)
		if err != nil {
			fail(err)
		}
		r, err := harness.RunBenchmark(b, opt)
		if err != nil {
			fail(err)
		}
		suite.Benchmarks = append(suite.Benchmarks, *r)
	} else {
		s, err := harness.RunSuite(opt)
		if err != nil {
			fail(err)
		}
		suite = s
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(suite); err != nil {
			fail(err)
		}
		return
	}

	switch {
	case *table == 2:
		fmt.Print(suite.Table2())
	case *table == 3:
		fmt.Print(suite.Table3())
	case *table == 4:
		fmt.Print(suite.Table4())
	case *table != 0:
		fail(fmt.Errorf("unknown table %d", *table))
	case *figure == 4:
		fmt.Print(suite.Figure4())
	case *figure == 5:
		fmt.Print(suite.Figure5())
	case *figure == 6:
		fmt.Print(suite.Figure6())
	case *figure == 7:
		fmt.Print(suite.Figure7())
	case *figure != 0:
		fail(fmt.Errorf("unknown figure %d", *figure))
	default:
		fmt.Print(suite.Report())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilplimit:", err)
	os.Exit(1)
}
