// Command benchdiff compares a fresh `go test -bench` run on stdin
// against the committed baseline (BENCH_limits.json) and fails when any
// shared benchmark's ns/op regressed past the threshold — the
// regression gate behind `make benchdiff`:
//
//	go test -bench 'BenchmarkGroup|BenchmarkAnalyzerStep' -benchmem -benchtime 3x -run '^$' . \
//		| go run ./cmd/benchdiff -baseline BENCH_limits.json
//
// Each benchmark present in both runs prints one line with the baseline
// and current ns/op and the relative delta (negative is faster).
// Benchmarks present on only one side are listed but never fail the
// gate, so adding or retiring a benchmark does not require refreshing
// the baseline in the same change.  The exit status is 1 when at least
// one shared benchmark slowed down by more than -threshold percent.
package main

import (
	"flag"
	"fmt"
	"os"

	"ilplimit/internal/telemetry"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_limits.json",
		"committed baseline to compare against")
	threshold := flag.Float64("threshold", 15,
		"maximum tolerated ns/op regression in percent")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	f, err := os.Open(*baselinePath)
	if err != nil {
		fail(err)
	}
	base, err := telemetry.ReadBenchBaseline(f)
	f.Close()
	if err != nil {
		fail(fmt.Errorf("%s: %w", *baselinePath, err))
	}
	cur, err := telemetry.ParseBenchOutput(os.Stdin)
	if err != nil {
		fail(err)
	}
	if len(cur.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark results on stdin (pipe `go test -bench` output in)"))
	}

	baseNs := map[string]float64{}
	for _, r := range base.Benchmarks {
		if v, ok := r.Metrics["ns/op"]; ok {
			baseNs[r.Name] = v
		}
	}
	if meta := base.Meta; meta != nil && meta.GitSHA != "" {
		fmt.Printf("baseline %s (rev %.12s)\n", *baselinePath, meta.GitSHA)
	} else {
		fmt.Printf("baseline %s\n", *baselinePath)
	}

	regressions := 0
	seen := map[string]bool{}
	for _, r := range cur.Benchmarks {
		ns, ok := r.Metrics["ns/op"]
		if !ok {
			continue
		}
		seen[r.Name] = true
		old, ok := baseNs[r.Name]
		if !ok {
			fmt.Printf("  %-44s %14.0f ns/op  (not in baseline)\n", r.Name, ns)
			continue
		}
		delta := 100 * (ns - old) / old
		verdict := "ok"
		if delta > *threshold {
			verdict = fmt.Sprintf("REGRESSION (> %g%%)", *threshold)
			regressions++
		}
		fmt.Printf("  %-44s %14.0f -> %12.0f ns/op  %+7.1f%%  %s\n",
			r.Name, old, ns, delta, verdict)
	}
	for _, r := range base.Benchmarks {
		if _, ok := r.Metrics["ns/op"]; ok && !seen[r.Name] {
			fmt.Printf("  %-44s (in baseline, not in this run)\n", r.Name)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %g%% vs %s\n",
			regressions, *threshold, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no ns/op regression beyond %g%%\n", *threshold)
}
