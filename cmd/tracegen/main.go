// Command tracegen produces, inspects and summarizes dynamic instruction
// traces — the pixie role of the original study's workflow, with traces
// persisted in the internal/trace binary format.
//
// Usage:
//
//	tracegen -bench espresso -o espresso.trc     # record a benchmark trace
//	tracegen prog.c -o prog.trc                  # record a mini-C program
//	tracegen -dump 20 -in prog.trc -sym prog.c   # print the first 20 events
//	tracegen -bench awk -summary                 # per-opcode trace summary
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ilplimit/internal/asm"
	"ilplimit/internal/bench"
	"ilplimit/internal/iofault"
	"ilplimit/internal/isa"
	"ilplimit/internal/minic"
	"ilplimit/internal/trace"
	"ilplimit/internal/vm"
)

func main() {
	var (
		benchName = flag.String("bench", "", "trace a benchmark suite program")
		scale     = flag.Int("scale", 1, "benchmark scale factor")
		out       = flag.String("o", "", "write the trace to this file")
		in        = flag.String("in", "", "read an existing trace instead of recording")
		sym       = flag.String("sym", "", "mini-C source for disassembling -in dumps")
		dump      = flag.Int("dump", 0, "print the first N events as text")
		summary   = flag.Bool("summary", false, "print per-opcode dynamic counts")
	)
	flag.Parse()

	if *in != "" {
		if err := dumpFile(*in, *sym, *dump); err != nil {
			fail(err)
		}
		return
	}

	var src string
	switch {
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fail(err)
		}
		src = b.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fail(fmt.Errorf("usage: tracegen (-bench NAME | FILE) [-o OUT] [-dump N] [-summary]"))
	}

	asmText, err := minic.Compile(src)
	if err != nil {
		fail(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		fail(err)
	}
	machine := vm.New(prog)
	machine.StepLimit = 1 << 34

	counts := make(map[isa.Op]int64)
	dumped := 0
	observe := func(ev vm.Event) {
		if *summary {
			counts[prog.Instrs[ev.Idx].Op]++
		}
		if dumped < *dump {
			printEvent(prog, ev)
			dumped++
		}
	}
	wrote := false
	if *out != "" {
		// WriteFile stages into *.tmp, fsyncs, renames, and fsyncs the
		// directory, so a crash mid-record never leaves a torn trace
		// under the output name.
		n, err := trace.WriteFile(iofault.OS(), *out, func(w *trace.Writer) error {
			var werr error
			rerr := machine.Run(func(ev vm.Event) {
				if werr == nil {
					werr = w.Write(ev)
				}
				observe(ev)
			})
			if werr != nil {
				return werr
			}
			return rerr
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d events to %s\n", n, *out)
		wrote = true
	} else if err := machine.Run(observe); err != nil {
		fail(err)
	}
	if *summary {
		printSummary(counts, machine.Steps)
	}
	if !*summary && *dump == 0 && !wrote {
		fmt.Printf("traced %d instructions (%d static)\n", machine.Steps, len(prog.Instrs))
	}
}

func dumpFile(path, symSrc string, n int) error {
	var prog *isa.Program
	if symSrc != "" {
		data, err := os.ReadFile(symSrc)
		if err != nil {
			return err
		}
		asmText, err := minic.Compile(string(data))
		if err != nil {
			return err
		}
		if prog, err = asm.Assemble(asmText); err != nil {
			return err
		}
	}
	dumped := 0
	total, err := trace.VisitFile(iofault.OS(), path, func(ev vm.Event) {
		if dumped < n || n == 0 {
			printEvent(prog, ev)
			dumped++
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d events in %s\n", total, path)
	return nil
}

func printEvent(p *isa.Program, ev vm.Event) {
	line := fmt.Sprintf("%8d  idx=%-6d", ev.Seq, ev.Idx)
	if p != nil && int(ev.Idx) < len(p.Instrs) {
		line += fmt.Sprintf("  %-28s", p.Instrs[ev.Idx].String())
	}
	if ev.Addr != 0 {
		line += fmt.Sprintf("  addr=%d", ev.Addr)
	}
	if ev.Taken {
		line += "  taken"
	}
	fmt.Println(line)
}

func printSummary(counts map[isa.Op]int64, total int64) {
	type row struct {
		op isa.Op
		n  int64
	}
	var rows []row
	for op, n := range counts {
		rows = append(rows, row{op, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("%-8s %12s %8s\n", "opcode", "count", "share")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %7.2f%%\n", r.op, r.n, 100*float64(r.n)/float64(total))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
