// Command tracegen produces, inspects and summarizes dynamic instruction
// traces — the pixie role of the original study's workflow, with traces
// persisted in the internal/trace binary format.  It also speaks the
// annotated trace store's v3 chunk format: -trace-cache populates a
// store through the full harness pipeline, -in dumps .ilpc chunk files
// (detected by magic), and -verify audits one end to end.
//
// Usage:
//
//	tracegen -bench espresso -o espresso.trc     # record a benchmark trace
//	tracegen prog.c -o prog.trc                  # record a mini-C program
//	tracegen -dump 20 -in prog.trc -sym prog.c   # print the first 20 events
//	tracegen -bench awk -summary                 # per-opcode trace summary
//	tracegen -bench all -trace-cache DIR         # populate an annotated store
//	tracegen -dump 20 -in DIR/espresso-….ilpc    # dump a v3 chunk file
//	tracegen -verify DIR/espresso-….ilpc         # audit frames, CRCs, footer
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ilplimit/internal/asm"
	"ilplimit/internal/bench"
	"ilplimit/internal/harness"
	"ilplimit/internal/iofault"
	"ilplimit/internal/isa"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/trace"
	"ilplimit/internal/vm"
)

func main() {
	var (
		benchName = flag.String("bench", "", "trace a benchmark suite program (\"all\" or a comma list with -trace-cache)")
		scale     = flag.Int("scale", 1, "benchmark scale factor")
		out       = flag.String("o", "", "write the trace to this file")
		in        = flag.String("in", "", "read an existing trace instead of recording")
		sym       = flag.String("sym", "", "mini-C source for disassembling -in dumps")
		dump      = flag.Int("dump", 0, "print the first N events as text")
		summary   = flag.Bool("summary", false, "print per-opcode dynamic counts")
		cache     = flag.String("trace-cache", "", "populate this annotated trace store through the full analysis pipeline")
		verify    = flag.String("verify", "", "audit a v3 chunk file: header, every frame CRC, footer; non-zero exit on any damage")
	)
	flag.Parse()

	if *verify != "" {
		if err := verifyChunkFile(*verify); err != nil {
			fail(err)
		}
		return
	}
	if *cache != "" {
		if err := populateStore(*cache, *benchName, *scale); err != nil {
			fail(err)
		}
		return
	}
	if *in != "" {
		if err := dumpFile(*in, *sym, *dump); err != nil {
			fail(err)
		}
		return
	}

	var src string
	switch {
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fail(err)
		}
		src = b.Source(*scale)
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fail(fmt.Errorf("usage: tracegen (-bench NAME | FILE) [-o OUT] [-dump N] [-summary]"))
	}

	asmText, err := minic.Compile(src)
	if err != nil {
		fail(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		fail(err)
	}
	machine := vm.New(prog)
	machine.StepLimit = 1 << 34

	counts := make(map[isa.Op]int64)
	dumped := 0
	observe := func(ev vm.Event) {
		if *summary {
			counts[prog.Instrs[ev.Idx].Op]++
		}
		if dumped < *dump {
			printEvent(prog, ev)
			dumped++
		}
	}
	wrote := false
	if *out != "" {
		// WriteFile stages into *.tmp, fsyncs, renames, and fsyncs the
		// directory, so a crash mid-record never leaves a torn trace
		// under the output name.
		n, err := trace.WriteFile(iofault.OS(), *out, func(w *trace.Writer) error {
			var werr error
			rerr := machine.Run(func(ev vm.Event) {
				if werr == nil {
					werr = w.Write(ev)
				}
				observe(ev)
			})
			if werr != nil {
				return werr
			}
			return rerr
		})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: wrote %d events to %s\n", n, *out)
		wrote = true
	} else if err := machine.Run(observe); err != nil {
		fail(err)
	}
	if *summary {
		printSummary(counts, machine.Steps)
	}
	if !*summary && *dump == 0 && !wrote {
		fmt.Printf("traced %d instructions (%d static)\n", machine.Steps, len(prog.Instrs))
	}
}

// populateStore runs the selected benchmarks through the full harness
// pipeline with the trace store enabled, so the store ends up holding
// exactly the entries a warm `ilplimit -trace-cache` run will hit.
func populateStore(dir, names string, scale int) error {
	var benches []bench.Benchmark
	switch names {
	case "":
		return fmt.Errorf("-trace-cache needs -bench NAME, a comma list, or \"all\"")
	case "all":
		benches = bench.All()
	default:
		for _, name := range strings.Split(names, ",") {
			b, err := bench.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			benches = append(benches, b)
		}
	}
	opt := harness.Options{Scale: scale, TraceStore: dir, Progress: os.Stderr}
	for _, b := range benches {
		if _, err := harness.RunBenchmark(b, opt); err != nil {
			return err
		}
	}
	return nil
}

// verifyChunkFile audits one v3 chunk file the way the store's reader
// does — strictly: a file that opens with any error (torn tail, flipped
// bit, wrong magic) fails the audit even if a salvageable frame prefix
// survives.
func verifyChunkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cf, err := trace.OpenChunkFile(data)
	if err != nil {
		if cf != nil {
			return fmt.Errorf("%s: %d of %d bytes salvageable (%d frames, %d events): %v",
				path, salvaged(cf), len(data), cf.NumFrames(), cf.Events(), err)
		}
		return fmt.Errorf("%s: %v", path, err)
	}
	var next, events int64
	for i := 0; i < cf.NumFrames(); i++ {
		base, addr, idx, flags := cf.Frame(i)
		if len(addr) != len(idx) || len(flags) != len(idx) {
			return fmt.Errorf("%s: frame %d: ragged lanes", path, i)
		}
		if i == 0 {
			next = base
		}
		if base != next {
			return fmt.Errorf("%s: frame %d: base %d, want %d (sequence gap)", path, i, base, next)
		}
		next += int64(len(idx))
		events += int64(len(idx))
	}
	if events != cf.Events() {
		return fmt.Errorf("%s: footer says %d events, frames hold %d", path, cf.Events(), events)
	}
	fmt.Printf("%s: ok\n  fingerprint: %s\n  meta: %d bytes\n  frames: %d\n  events: %d\n",
		path, cf.Fingerprint(), len(cf.Meta()), cf.NumFrames(), cf.Events())
	return nil
}

// salvaged estimates how many bytes of a damaged file's frame prefix
// remained usable (display only).
func salvaged(cf *trace.ChunkFile) int64 {
	return cf.Events() * 12
}

// chunkFlagNames maps the per-event annotation bits to mnemonics.
var chunkFlagNames = []struct {
	bit  uint32
	name string
}{
	{limits.FlagLeader, "leader"},
	{limits.FlagBranch, "branch"},
	{limits.FlagLoad, "load"},
	{limits.FlagStore, "store"},
	{limits.FlagCall, "call"},
	{limits.FlagReturn, "return"},
	{limits.FlagInline, "inline"},
	{limits.FlagUnroll, "unroll"},
	{limits.FlagTaken, "taken"},
}

// dumpChunkFile prints the first n annotated events of a v3 chunk file
// with flag mnemonics and per-lane misprediction bits.
func dumpChunkFile(path string, data []byte, prog *isa.Program, n int) error {
	cf, err := trace.OpenChunkFile(data)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	dumped := 0
	for f := 0; f < cf.NumFrames() && (n == 0 || dumped < n); f++ {
		base, addr, idx, flags := cf.Frame(f)
		for i := range idx {
			if n != 0 && dumped >= n {
				break
			}
			line := fmt.Sprintf("%8d  idx=%-6d", base+int64(i), idx[i])
			if prog != nil && int(idx[i]) < len(prog.Instrs) {
				line += fmt.Sprintf("  %-28s", prog.Instrs[idx[i]].String())
			}
			if addr[i] != 0 {
				line += fmt.Sprintf("  addr=%d", addr[i])
			}
			for _, fn := range chunkFlagNames {
				if flags[i]&fn.bit != 0 {
					line += "  " + fn.name
				}
			}
			if m := flags[i] & limits.FlagMispredAll; m != 0 {
				line += fmt.Sprintf("  mispred=%#x", m>>16)
			}
			fmt.Println(line)
			dumped++
		}
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d events in %d frames in %s\n", cf.Events(), cf.NumFrames(), path)
	return nil
}

func dumpFile(path, symSrc string, n int) error {
	var prog *isa.Program
	if symSrc != "" {
		data, err := os.ReadFile(symSrc)
		if err != nil {
			return err
		}
		asmText, err := minic.Compile(string(data))
		if err != nil {
			return err
		}
		if prog, err = asm.Assemble(asmText); err != nil {
			return err
		}
	}
	// A v3 chunk file announces itself by magic; everything else goes
	// through the v2 event-stream reader.
	if data, err := os.ReadFile(path); err == nil && trace.IsChunkFile(data) {
		return dumpChunkFile(path, data, prog, n)
	}
	dumped := 0
	total, err := trace.VisitFile(iofault.OS(), path, func(ev vm.Event) {
		if dumped < n || n == 0 {
			printEvent(prog, ev)
			dumped++
		}
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d events in %s\n", total, path)
	return nil
}

func printEvent(p *isa.Program, ev vm.Event) {
	line := fmt.Sprintf("%8d  idx=%-6d", ev.Seq, ev.Idx)
	if p != nil && int(ev.Idx) < len(p.Instrs) {
		line += fmt.Sprintf("  %-28s", p.Instrs[ev.Idx].String())
	}
	if ev.Addr != 0 {
		line += fmt.Sprintf("  addr=%d", ev.Addr)
	}
	if ev.Taken {
		line += "  taken"
	}
	fmt.Println(line)
}

func printSummary(counts map[isa.Op]int64, total int64) {
	type row struct {
		op isa.Op
		n  int64
	}
	var rows []row
	for op, n := range counts {
		rows = append(rows, row{op, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("%-8s %12s %8s\n", "opcode", "count", "share")
	for _, r := range rows {
		fmt.Printf("%-8s %12d %7.2f%%\n", r.op, r.n, 100*float64(r.n)/float64(total))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
