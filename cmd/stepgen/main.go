// Command stepgen generates the specialized columnar analyzer steppers
// in internal/limits/step_gen.go.
//
// The generic limits.StepAnnotated pays, on every one of the ~10⁶
// events × 14 analyzer instances of a benchmark, a dense control-kind
// switch, per-model attention-mask tests, misprediction-lane checks and
// a latency-table indirection — even though every one of those choices
// is a constant of the analyzer's (model, unrolling, latency)
// configuration.  stepgen folds them away at build time: for each of
// the paper's seven machine models × {plain, unrolled} × {unit
// latency, latency table} it emits one branch-free chunk stepper that
// streams the columnar lanes of a limits.Chunk, plus the dispatch
// table limits.NewAnalyzerConfig resolves once at construction.
//
// The emitted code is derived mechanically from the generic
// StepAnnotated (the equivalence oracle): each specialization is the
// generic body with the model's constants substituted and the dead
// branches deleted.  step_gen_test.go pins generated-vs-generic result
// equality for every configuration, and `make generate-check` fails
// the build when the committed output drifts from this generator.
//
// Usage (normally via `go generate ./internal/limits` or `make generate`):
//
//	go run ilplimit/cmd/stepgen -out internal/limits/step_gen.go
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"log"
	"os"
	"strings"
)

// modelSpec describes one machine model's constants: exactly the facts
// NewAnalyzerConfig derives from limits.Model and the generator folds
// into the emitted stepper.
type modelSpec struct {
	// ident is the limits.Model constant name (and function-name stem).
	ident string
	// paper is the paper's model name, for comments.
	paper string
	// ctrl selects the control-constraint emission (the folded
	// ctrlKind): none, lastBranch, cdOrdered, cd, lastMispred,
	// cdMispredOrdered or cdMispred.
	ctrl string
	// needCD: the model tracks dynamic control dependences (leader
	// handling, call/return stack, rec table).
	needCD bool
	// spec: the model speculates, so branch events carry a
	// misprediction fact in the analyzer's predictor lane.
	spec bool
	// segments: the model aggregates misprediction-distance segments
	// (SP only; NewAnalyzerConfig sets trackSegments iff model == SP).
	segments bool
	// updBranchT: some constraint of this model reads lastBranchT, so
	// branch completion must keep it current.
	updBranchT bool
	// updMispredT: some constraint reads lastMispredT.
	updMispredT bool
}

// models lists the paper's seven machines with the constants the
// generic path re-derives per event.
var models = []modelSpec{
	{ident: "Base", paper: "BASE", ctrl: "lastBranch", updBranchT: true},
	{ident: "CD", paper: "CD", ctrl: "cdOrdered", needCD: true, updBranchT: true},
	{ident: "CDMF", paper: "CD-MF", ctrl: "cd", needCD: true},
	{ident: "SP", paper: "SP", ctrl: "lastMispred", spec: true, segments: true, updMispredT: true},
	{ident: "SPCD", paper: "SP-CD", ctrl: "cdMispredOrdered", needCD: true, spec: true, updMispredT: true},
	{ident: "SPCDMF", paper: "SP-CD-MF", ctrl: "cdMispred", needCD: true, spec: true},
	{ident: "Oracle", paper: "ORACLE", ctrl: "none"},
}

// gen accumulates emitted source; go/format normalizes the layout.
type gen struct {
	buf bytes.Buffer
}

// p emits one line.
func (g *gen) p(format string, args ...interface{}) {
	fmt.Fprintf(&g.buf, format, args...)
	g.buf.WriteByte('\n')
}

// funcName builds the stepper identifier for one configuration.
func funcName(m modelSpec, unroll, lat bool) string {
	u, l := "plain", "unit"
	if unroll {
		u = "unroll"
	}
	if lat {
		l = "lat"
	}
	return fmt.Sprintf("step%s_%s_%s", m.ident, u, l)
}

// attentionMask renders the constant attention-mask expression: the
// flags that divert an event from the pure scheduling path.
func attentionMask(m modelSpec, unroll bool) string {
	parts := []string{"FlagInline"}
	if unroll {
		parts = append(parts, "FlagUnroll")
	}
	parts = append(parts, "FlagCall", "FlagReturn")
	if m.needCD {
		parts = append(parts, "FlagLeader")
	}
	return strings.Join(parts, " | ")
}

// skipMask renders the constant skip-mask expression: the filters that
// remove an event from this configuration's schedule.
func skipMask(unroll bool) string {
	if unroll {
		return "FlagInline | FlagUnroll"
	}
	return "FlagInline"
}

// emitStepper writes one specialized chunk stepper.  The body is the
// generic StepAnnotated with this configuration's constants folded:
// dead model branches deleted, masks inlined, and the per-event
// count/maxT updates hoisted to chunk-local accumulators.
func emitStepper(g *gen, m modelSpec, unroll, lat bool) {
	name := funcName(m, unroll, lat)
	uDesc := "without unrolling"
	if unroll {
		uDesc = "with perfect unrolling"
	}
	lDesc := "unit latency"
	if lat {
		lDesc = "a latency table"
	}
	// isBr is needed beyond the mispred computation whenever the model
	// reacts to branch completion (rec table, branch-ordering times) or
	// orders branches in its constraint.
	needIsBr := m.updBranchT || m.needCD || m.ctrl == "cdOrdered"
	needMispred := m.spec

	g.p("// %s schedules one columnar chunk under %s (%s, %s).", name, m.paper, uDesc, lDesc)
	g.p("func %s(a *Analyzer, c *Chunk) {", name)
	g.p("idxL := c.idx")
	g.p("addrL := c.addr[:len(idxL)]")
	g.p("flagsL := c.flags[:len(idxL)]")
	g.p("meta := a.st.meta")
	if lat {
		// NewAnalyzerConfig sizes latTab to latTabLen, so the conversion
		// cannot panic and the uint8 opcode index needs no bounds check.
		g.p("latTab := (*[latTabLen]int64)(a.latTab)")
	}
	g.p("count, maxT := a.count, a.maxT")
	g.p("for i := range idxL {")
	g.p("flags := flagsL[i]")
	// Models without control-dependence tracking never read meta on the
	// attention path, so the (potentially cache-missing) meta load is
	// deferred past it: skipped events never touch the table.
	if m.needCD {
		g.p("m := &meta[idxL[i]]")
	}

	// Attention block: leaders (CD models), calls/returns, filtered
	// instructions.
	g.p("if flags&(%s) != 0 {", attentionMask(m, unroll))
	if m.needCD {
		g.p("if flags&FlagLeader != 0 {")
		g.p("a.enterBlock(m.block)")
		g.p("}")
	}
	g.p("if flags&FlagCall != 0 {")
	if m.needCD {
		g.p("a.stack = append(a.stack, frame{")
		g.p("savedCD:       a.curCD,")
		g.p("savedInherit:  a.inheritCD,")
		g.p("savedProcSeq:  a.curProcSeq,")
		g.p("savedBlockSeq: a.curBlockSeq,")
		g.p("})")
		g.p("a.inheritCD = a.curCD")
		g.p("a.curProcSeq = a.seqCounter + 1")
	}
	g.p("continue")
	g.p("}")
	g.p("if flags&FlagReturn != 0 {")
	if m.needCD {
		g.p("if n := len(a.stack); n > 0 {")
		g.p("f := a.stack[n-1]")
		g.p("a.stack = a.stack[:n-1]")
		g.p("a.curCD = f.savedCD")
		g.p("a.inheritCD = f.savedInherit")
		g.p("a.curProcSeq = f.savedProcSeq")
		g.p("a.curBlockSeq = f.savedBlockSeq")
		g.p("}")
	}
	g.p("continue")
	g.p("}")
	g.p("if flags&(%s) != 0 {", skipMask(unroll))
	if m.needCD {
		g.p("if flags&FlagBranch != 0 {")
		g.p("// A removed loop branch is transparent: dependents inherit")
		g.p("// the branch's own control dependence.")
		g.p("a.rec[m.block] = blockRec{")
		g.p("seq:      a.curBlockSeq,")
		g.p("termT:    a.curCD.time,")
		g.p("mispredT: a.curCD.mispredT,")
		g.p("procSeq:  a.curProcSeq,")
		g.p("}")
		g.p("}")
	}
	g.p("continue")
	g.p("}")
	g.p("}")

	if !m.needCD {
		g.p("m := &meta[idxL[i]]")
	}
	// Data dependences, branch-free: SrcRegs zero-fills unused operand
	// slots and regTime[0] is pinned to 0, so maxing over all three is
	// the nsrc-guarded max without the data-dependent branch ladder.
	// The &regIndexMask makes the in-range indices provable.
	g.p("t := a.regTime[m.src1&regIndexMask]")
	g.p("if rt := a.regTime[m.src2&regIndexMask]; rt > t {")
	g.p("t = rt")
	g.p("}")
	g.p("if rt := a.regTime[m.src3&regIndexMask]; rt > t {")
	g.p("t = rt")
	g.p("}")
	g.p("if flags&FlagLoad != 0 {")
	g.p("if mt := a.memTime.load(int64(addrL[i])); mt > t {")
	g.p("t = mt")
	g.p("}")
	g.p("}")

	// Branch facts, folded to what this model consumes.
	if needIsBr {
		g.p("isBr := flags&FlagBranch != 0")
	}
	if needMispred {
		if needIsBr {
			g.p("mispred := isBr && flags&a.mispredMask != 0")
		} else {
			g.p("mispred := flags&FlagBranch != 0 && flags&a.mispredMask != 0")
		}
	}

	// Control-flow constraint: the folded ctrlKind switch arm.
	switch m.ctrl {
	case "none":
		// Oracle: data dependences only.
	case "lastBranch":
		g.p("if ctrl := a.lastBranchT; ctrl > t {")
		g.p("t = ctrl")
		g.p("}")
	case "cdOrdered":
		g.p("ctrl := a.curCD.time")
		g.p("if isBr && a.lastBranchT > ctrl {")
		g.p("ctrl = a.lastBranchT")
		g.p("}")
		g.p("if ctrl > t {")
		g.p("t = ctrl")
		g.p("}")
	case "cd":
		g.p("if ctrl := a.curCD.time; ctrl > t {")
		g.p("t = ctrl")
		g.p("}")
	case "lastMispred":
		g.p("if ctrl := a.lastMispredT; ctrl > t {")
		g.p("t = ctrl")
		g.p("}")
	case "cdMispredOrdered":
		g.p("ctrl := a.curCD.mispredT")
		g.p("if mispred && a.lastMispredT > ctrl {")
		g.p("ctrl = a.lastMispredT")
		g.p("}")
		g.p("if ctrl > t {")
		g.p("t = ctrl")
		g.p("}")
	case "cdMispred":
		g.p("if ctrl := a.curCD.mispredT; ctrl > t {")
		g.p("t = ctrl")
		g.p("}")
	default:
		log.Fatalf("unknown ctrl kind %q", m.ctrl)
	}

	// Issue + completion time (T = t+1; C = T + lat - 1 folds to t+lat).
	if lat {
		g.p("C := t + latTab[m.op]")
	} else {
		g.p("C := t + 1")
	}

	// Record the schedule.  The destination store is unconditional — a
	// zero-register write lands in slot 0 and is immediately re-zeroed,
	// preserving the regTime[0]==0 invariant the source max relies on —
	// trading the unpredictable d!=0 branch for one L1 store.
	g.p("a.regTime[m.dest&regIndexMask] = C")
	g.p("a.regTime[0] = 0")
	g.p("if flags&FlagStore != 0 {")
	g.p("a.memTime.store(int64(addrL[i]), C)")
	g.p("}")
	g.p("count++")
	g.p("if C > maxT {")
	g.p("maxT = C")
	g.p("}")
	if m.segments {
		g.p("a.segCount++")
		g.p("if C > a.segMax {")
		g.p("a.segMax = C")
		g.p("}")
	}

	// Branch completion: only the state this model's constraints (or
	// its rec table) read back is kept current.
	switch {
	case m.needCD && m.spec:
		g.p("if isBr {")
		if m.updBranchT {
			g.p("a.lastBranchT = C")
		}
		g.p("mt := a.curCD.mispredT")
		g.p("if mispred {")
		g.p("mt = C")
		g.p("}")
		emitRec(g, "C", "mt")
		if m.updMispredT {
			g.p("if mispred {")
			g.p("a.lastMispredT = C")
			g.p("}")
		}
		g.p("}")
	case m.needCD:
		g.p("if isBr {")
		if m.updBranchT {
			g.p("a.lastBranchT = C")
		}
		emitRec(g, "C", "a.curCD.mispredT")
		g.p("}")
	case m.spec:
		if m.updBranchT {
			g.p("if isBr {")
			g.p("a.lastBranchT = C")
			g.p("}")
		}
		g.p("if mispred {")
		g.p("a.lastMispredT = C")
		if m.segments {
			g.p("a.closeSegment()")
		}
		g.p("}")
	case m.updBranchT:
		g.p("if isBr {")
		g.p("a.lastBranchT = C")
		g.p("}")
	}

	g.p("}")
	g.p("a.count, a.maxT = count, maxT")
	g.p("}")
	g.p("")
}

// emitRec writes the per-block terminator record update.
func emitRec(g *gen, termT, mispredT string) {
	g.p("a.rec[m.block] = blockRec{")
	g.p("seq:      a.curBlockSeq,")
	g.p("termT:    %s,", termT)
	g.p("mispredT: %s,", mispredT)
	g.p("procSeq:  a.curProcSeq,")
	g.p("}")
}

func main() {
	out := flag.String("out", "step_gen.go", "output file (package limits)")
	flag.Parse()

	g := &gen{}
	g.p("// Code generated by cmd/stepgen; DO NOT EDIT.")
	g.p("")
	g.p("// Specialized columnar analyzer steppers: one branch-free chunk")
	g.p("// stepper per (model, unrolling, latency) configuration, derived")
	g.p("// from the generic StepAnnotated with the configuration's constants")
	g.p("// folded away.  Regenerate with `make generate` (or `go generate")
	g.p("// ./internal/limits`); `make generate-check` fails when this file")
	g.p("// drifts from cmd/stepgen.")
	g.p("package limits")
	g.p("")
	g.p("import \"ilplimit/internal/isa\"")
	g.p("")
	g.p("// regIndexMask bounds register indices without a bounds check; the")
	g.p("// blank assert requires isa.NumRegs to be a power of two, so masking")
	g.p("// is the identity on every valid register number.")
	g.p("const regIndexMask = isa.NumRegs - 1")
	g.p("")
	g.p("var _ = [1]struct{}{}[isa.NumRegs&(isa.NumRegs-1)]")
	g.p("")
	g.p("// latTabLen is the latency table's allocated length: a full uint8")
	g.p("// index space, so latTab[m.op] is provably in range.")
	g.p("const latTabLen = 256")
	g.p("")
	for _, m := range models {
		for _, unroll := range []bool{false, true} {
			for _, lat := range []bool{false, true} {
				emitStepper(g, m, unroll, lat)
			}
		}
	}

	// Dispatch table, indexed [model][unroll][latency-table].
	g.p("// steppers dispatches the generated specializations by model,")
	g.p("// unrolling and latency-table presence.")
	g.p("var steppers = [NumModels][2][2]func(*Analyzer, *Chunk){")
	for _, m := range models {
		g.p("%s: {", m.ident)
		for _, unroll := range []bool{false, true} {
			g.p("{%s, %s},", funcName(m, unroll, false), funcName(m, unroll, true))
		}
		g.p("},")
	}
	g.p("}")
	g.p("")
	g.p("// stepperFor resolves the specialized columnar stepper for one")
	g.p("// analyzer configuration, or nil for models outside the generated")
	g.p("// set.  The specializations assume the construction-time invariants")
	g.p("// NewAnalyzerConfig guarantees when it installs one — unbounded")
	g.p("// window, no width tracking — plus the per-chunk preconditions")
	g.p("// StepChunk checks before dispatching (no OnSchedule callback, and")
	g.p("// a resolved predictor lane for speculative models).")
	g.p("func stepperFor(m Model, unrolling, latTable bool) func(*Analyzer, *Chunk) {")
	g.p("if m < 0 || int(m) >= NumModels {")
	g.p("return nil")
	g.p("}")
	g.p("u, l := 0, 0")
	g.p("if unrolling {")
	g.p("u = 1")
	g.p("}")
	g.p("if latTable {")
	g.p("l = 1")
	g.p("}")
	g.p("return steppers[m][u][l]")
	g.p("}")

	src, err := format.Source(g.buf.Bytes())
	if err != nil {
		// Emit the unformatted source anyway so the syntax error is
		// inspectable at the reported line.
		os.WriteFile(*out, g.buf.Bytes(), 0o644)
		log.Fatalf("stepgen: generated code does not format: %v", err)
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		log.Fatalf("stepgen: %v", err)
	}
}
