// Command ilplimitd serves the parallelism-limit analysis as a
// multi-tenant daemon: clients POST a mini-C program, textual assembly,
// a recorded trace, or a benchmark-suite selection to /v1/jobs and
// receive the model × benchmark parallelism matrix as JSON.
//
// Usage:
//
//	ilplimitd -addr 127.0.0.1:8080            # serve the API
//	ilplimitd -data state/                    # durable results (survive SIGKILL)
//	ilplimitd -workers 4 -queue-depth 16      # capacity
//	ilplimitd -tenant-quota 2                 # per-tenant running bound
//	ilplimitd -job-timeout 60s                # default per-job deadline
//	ilplimitd -debug-addr 127.0.0.1:6060      # expvar + pprof
//	ilplimitd -version                        # build provenance
//
// The daemon degrades explicitly instead of collapsing: a full
// admission queue sheds with 429 + Retry-After, a flooding tenant is
// shed before it can crowd out the others, oversized bodies get 413,
// slow-loris uploads are cut by the read timeout, and SIGTERM drains
// in-flight jobs before exiting.  With -data, completed results are
// journaled durably and replayed byte-identically after a restart —
// kill -9 included — and interrupted suite jobs resume instead of
// re-running completed benchmarks.
//
// The fault-injection flags (-exec-delay, -panic-every, -fail-every)
// shape load deterministically for the soak harness and resilience
// tests; leave them unset in real deployments.
package main

import (
	"context"
	_ "expvar" // registers /debug/vars on the -debug-addr server
	"flag"
	"fmt"
	"net"
	_ "net/http/pprof" // registers /debug/pprof on the -debug-addr server
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"ilplimit/internal/faultinject"
	"ilplimit/internal/httpserve"
	"ilplimit/internal/server"
	"ilplimit/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "serve the job API on this address (\":0\" picks a port, announced on stderr)")
		data         = flag.String("data", "", "durable state directory: journaled results survive restarts and kill -9 (empty = in-memory only)")
		workers      = flag.Int("workers", 0, "job execution pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue bound; jobs beyond it are shed with 429 (0 = default 64)")
		tenantQueue  = flag.Int("tenant-queue-depth", 0, "one tenant's share of the admission queue (0 = quarter of queue-depth)")
		tenantQuota  = flag.Int("tenant-quota", 0, "one tenant's concurrently running jobs (0 = default 2)")
		maxBody      = flag.Int64("max-body", 0, "request body byte limit, 413 beyond (0 = default 8 MiB)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job deadline (0 = 60s)")
		maxTimeout   = flag.Duration("max-timeout", 0, "ceiling for client-requested deadlines (0 = 5m)")
		maxScale     = flag.Int("max-scale", 0, "largest accepted suite scale factor (0 = default 8)")
		cacheEntries = flag.Int("cache-entries", 0, "completed-result LRU size (0 = default 256)")
		watchdog     = flag.Duration("watchdog", 0, "per-job analyzer stall watchdog (0 = 30s, negative = off)")
		traceCache   = flag.String("trace-cache", "", "persistent annotated trace store shared across jobs: warm entries replay with no VM run (uploaded-trace jobs never use it)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before forcing exit")
		readTimeout  = flag.Duration("read-timeout", 30*time.Second, "cut a connection whose request has not fully arrived in this long (the slow-loris defense)")
		debugAddr    = flag.String("debug-addr", "", "serve expvar and net/http/pprof on this address")
		execDelay    = flag.Duration("exec-delay", 0, "fault injection: pause every job this long before analysis (soak load shaping)")
		panicEvery   = flag.Int64("panic-every", 0, "fault injection: panic inside every Nth job")
		failEvery    = flag.Int64("fail-every", 0, "fault injection: fail every Nth job")
		version      = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("ilplimitd %s %s\n", telemetry.GitRevision(), runtime.Version())
		return
	}

	met := telemetry.NewRegistry()
	var plan *faultinject.ServerPlan
	if *execDelay > 0 || *panicEvery > 0 || *failEvery > 0 {
		plan = &faultinject.ServerPlan{
			ExecDelay: *execDelay, PanicEvery: *panicEvery, FailEvery: *failEvery,
		}
		fmt.Fprintf(os.Stderr, "ilplimitd: fault injection armed (exec-delay %v, panic-every %d, fail-every %d)\n",
			*execDelay, *panicEvery, *failEvery)
	}
	srv, err := server.New(server.Config{
		DataDir:          *data,
		QueueDepth:       *queueDepth,
		TenantQueueDepth: *tenantQueue,
		TenantQuota:      *tenantQuota,
		Workers:          *workers,
		MaxBodyBytes:     *maxBody,
		DefaultTimeout:   *jobTimeout,
		MaxTimeout:       *maxTimeout,
		MaxScale:         *maxScale,
		CacheEntries:     *cacheEntries,
		Watchdog:         *watchdog,
		TraceStore:       *traceCache,
		Fault:            plan,
		Metrics:          met,
		GitSHA:           telemetry.GitRevision(),
	})
	if err != nil {
		fail(err)
	}

	// Register the handler before announcing any listener: a supervisor
	// that signals the instant it sees the address must find the trap
	// already armed, not the default kill action.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)

	var debug *httpserve.Server
	if *debugAddr != "" {
		met.PublishExpvar("ilplimitd")
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail(fmt.Errorf("debug-addr %s: %w", *debugAddr, err))
		}
		// nil handler = DefaultServeMux, where expvar and pprof registered.
		debug = httpserve.Start(dln, nil, httpserve.Options{})
		fmt.Fprintf(os.Stderr, "ilplimitd: debug server listening on %s\n", debug.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(fmt.Errorf("addr %s: %w", *addr, err))
	}
	// The read timeouts are the slow-loris defense: a client trickling
	// its upload is cut off instead of pinning a connection forever.
	api := httpserve.Start(ln, srv.Handler(), httpserve.Options{
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		IdleTimeout:       2 * time.Minute,
	})
	fmt.Fprintf(os.Stderr, "ilplimitd: listening on %s\n", api.Addr())

	sig := <-sigs
	fmt.Fprintf(os.Stderr, "ilplimitd: %v: draining (up to %v)\n", sig, *drainWait)

	// Graceful shutdown: stop admitting first (new jobs shed with 429,
	// healthz flips not-ready so balancers stop routing here), let the
	// queue and the workers empty, then close the listeners and the
	// durable store.
	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	drainErr := srv.Drained(ctx)
	cancel()
	if err := api.Shutdown(5 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "ilplimitd: api shutdown:", err)
	}
	if debug != nil {
		if err := debug.Shutdown(time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "ilplimitd: debug shutdown:", err)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ilplimitd: close:", err)
	}
	if drainErr != nil {
		fail(fmt.Errorf("drain incomplete: %w", drainErr))
	}
	fmt.Fprintln(os.Stderr, "ilplimitd: drained cleanly")
}

// fail reports a fatal error on stderr and exits non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilplimitd:", err)
	os.Exit(1)
}
