// Command asmdump assembles a file and dumps the analyses the limit study
// computes statically: the disassembly, per-procedure control-flow graphs
// with reverse dominance frontiers (immediate control dependences), natural
// loops, and the instructions removed by the perfect-inlining and
// perfect-unrolling trace filters.
//
// Usage:
//
//	asmdump prog.s                 # disassembly
//	asmdump -cfg prog.s            # CFG + control dependence per procedure
//	asmdump -marks prog.s          # trace-filter classification
//	asmdump -c prog.c              # treat input as mini-C and compile first
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ilplimit/internal/asm"
	"ilplimit/internal/cfg"
	"ilplimit/internal/dataflow"
	"ilplimit/internal/isa"
	"ilplimit/internal/minic"
	"ilplimit/internal/trace"
)

func main() {
	var (
		showCFG   = flag.Bool("cfg", false, "dump control-flow graphs, dominators and control dependences")
		showMarks = flag.Bool("marks", false, "dump inlining/unrolling trace-filter marks")
		fromC     = flag.Bool("c", false, "input is mini-C; compile before assembling")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fail(fmt.Errorf("usage: asmdump [-cfg] [-marks] [-c] FILE"))
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	src := string(data)
	if *fromC {
		src, err = minic.Compile(src)
		if err != nil {
			fail(err)
		}
	}
	prog, err := asm.Assemble(src)
	if err != nil {
		fail(err)
	}

	if !*showCFG && !*showMarks {
		fmt.Print(prog.Disassemble())
		return
	}

	var graphs []*cfg.Graph
	for _, proc := range prog.Procs {
		g, err := cfg.Build(prog, proc)
		if err != nil {
			fail(err)
		}
		graphs = append(graphs, g)
	}

	if *showCFG {
		for _, g := range graphs {
			dumpCFG(prog, g)
		}
	}
	if *showMarks {
		dumpMarks(prog, graphs)
	}
}

func dumpCFG(p *isa.Program, g *cfg.Graph) {
	fmt.Printf("procedure %s: %d blocks, entry B%d\n", g.Proc.Name, len(g.Blocks), g.Entry)
	for b := range g.Blocks {
		blk := &g.Blocks[b]
		fmt.Printf("  B%d [%d,%d)", b, blk.Start, blk.End)
		if len(blk.Succs) > 0 {
			fmt.Printf("  succs=%v", blk.Succs)
		}
		if g.IDom[b] >= 0 {
			fmt.Printf("  idom=B%d", g.IDom[b])
		}
		if g.IPdom[b] == g.VExit() {
			fmt.Printf("  ipdom=exit")
		} else if g.IPdom[b] >= 0 {
			fmt.Printf("  ipdom=B%d", g.IPdom[b])
		}
		if len(g.RDF[b]) > 0 {
			deps := make([]string, len(g.RDF[b]))
			for i, x := range g.RDF[b] {
				deps[i] = fmt.Sprintf("B%d@%d", x, g.Terminator(x))
			}
			fmt.Printf("  ctrl-dep on %s", strings.Join(deps, ","))
		}
		fmt.Println()
		for i := blk.Start; i < blk.End; i++ {
			fmt.Printf("    %5d: %s\n", i, p.Instrs[i].String())
		}
	}
	for _, l := range g.Loops {
		fmt.Printf("  loop header B%d blocks %v latches %v\n", l.Header, l.Blocks, l.Latches)
	}
	fmt.Println()
}

func dumpMarks(p *isa.Program, graphs []*cfg.Graph) {
	inline := trace.InlineMarks(p)
	unroll := dataflow.UnrollMarks(p, graphs)
	fmt.Println("trace-filter marks (I = removed by perfect inlining, U = by perfect unrolling):")
	for i := range p.Instrs {
		tag := "  "
		switch {
		case inline[i] && unroll[i]:
			tag = "IU"
		case inline[i]:
			tag = "I "
		case unroll[i]:
			tag = "U "
		}
		fmt.Printf("  %s %5d: %s\n", tag, i, p.Instrs[i].String())
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "asmdump:", err)
	os.Exit(1)
}
