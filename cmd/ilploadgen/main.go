// Command ilploadgen drives an ilplimitd daemon with configurable —
// including deliberately abusive — load, and judges what comes back.
// It is the proof harness for the daemon's robustness claims: under
// overload the daemon must shed explicitly (429 + Retry-After), never
// 5xx, and keep serving admitted jobs.
//
// Usage:
//
//	ilploadgen -addr http://127.0.0.1:8080 -rate 20 -duration 30s
//	ilploadgen -tenants 4 -unique              # tenant mix, cache-busting bodies
//	ilploadgen -abuse oversize,slowloris,disconnect -abuse-every 5
//	ilploadgen -require-shed -forbid-5xx       # CI gates: exit non-zero on violation
//	ilploadgen -json                           # machine-readable summary
//
// Arrivals are open-loop: requests launch on a fixed schedule
// regardless of how slowly the daemon answers, which is what makes
// overload reachable at all (a closed loop self-throttles).  The abuse
// rotation injects oversized bodies (expect 413), slow-loris uploads
// (expect the server's read timeout to cut the connection), and
// mid-upload disconnects (the server must carry on unharmed).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ilplimit/internal/telemetry"
)

// counts aggregates the run's outcomes; every field is a tally the
// summary prints and the CI gates judge.
type counts struct {
	launched, ok, cached, durable    atomic.Int64
	shed, shedNoRetryAfter           atomic.Int64
	clientErr, serverErr, transport  atomic.Int64
	oversized, lorisCut, disconnects atomic.Int64
}

// summary is the JSON form of a finished run.
type summary struct {
	Launched     int64 `json:"launched"`
	OK           int64 `json:"ok"`
	Cached       int64 `json:"cached"`
	Durable      int64 `json:"durable"`
	Shed         int64 `json:"shed"`
	ShedNoRetry  int64 `json:"shed_without_retry_after"`
	ClientErrors int64 `json:"client_errors"`
	ServerErrors int64 `json:"server_errors"`
	Transport    int64 `json:"transport_errors"`
	Oversized    int64 `json:"oversized_sent"`
	LorisCut     int64 `json:"slowloris_cut"`
	Disconnects  int64 `json:"disconnects_sent"`
}

func (c *counts) summary() summary {
	return summary{
		Launched: c.launched.Load(), OK: c.ok.Load(),
		Cached: c.cached.Load(), Durable: c.durable.Load(),
		Shed: c.shed.Load(), ShedNoRetry: c.shedNoRetryAfter.Load(),
		ClientErrors: c.clientErr.Load(), ServerErrors: c.serverErr.Load(),
		Transport: c.transport.Load(), Oversized: c.oversized.Load(),
		LorisCut: c.lorisCut.Load(), Disconnects: c.disconnects.Load(),
	}
}

// program mints a small analysis job whose seed makes its cache key
// unique — the cache-busting lever.
func program(seed int64) string {
	return fmt.Sprintf(`
int main() {
	int i, s;
	s = %d;
	for (i = 0; i < 48; i++) {
		if (i - (i / 3) * 3 == 0) s += i;
		else s -= 1;
	}
	print(s);
	return 0;
}
`, seed)
}

func main() {
	var (
		addr       = flag.String("addr", "http://127.0.0.1:8080", "daemon base URL")
		rate       = flag.Float64("rate", 10, "open-loop arrival rate, requests per second")
		duration   = flag.Duration("duration", 10*time.Second, "how long to generate load")
		tenants    = flag.Int("tenants", 2, "spread requests across this many tenants (t0, t1, ...)")
		unique     = flag.Bool("unique", false, "make every request body unique (defeats the result cache)")
		pool       = flag.Int("programs", 4, "distinct program bodies when not -unique (cache hits expected)")
		timeoutMS  = flag.Int64("timeout-ms", 0, "per-job deadline sent with each request (0 = server default)")
		abuse      = flag.String("abuse", "", "comma list of abusive plans to rotate: oversize, slowloris, disconnect")
		abuseEvery = flag.Int64("abuse-every", 10, "every Nth request is abusive (with -abuse)")
		jsonOut    = flag.Bool("json", false, "emit the summary as JSON")
		reqShed    = flag.Bool("require-shed", false, "exit non-zero unless at least one 429 with Retry-After was observed")
		no5xx      = flag.Bool("forbid-5xx", false, "exit non-zero if any 5xx was observed")
		version    = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()
	if *version {
		fmt.Printf("ilploadgen %s %s\n", telemetry.GitRevision(), runtime.Version())
		return
	}
	if *rate <= 0 || *duration <= 0 {
		fail(fmt.Errorf("rate and duration must be positive"))
	}
	var plans []string
	if *abuse != "" {
		for _, p := range strings.Split(*abuse, ",") {
			switch p = strings.TrimSpace(p); p {
			case "oversize", "slowloris", "disconnect":
				plans = append(plans, p)
			default:
				fail(fmt.Errorf("unknown abuse plan %q", p))
			}
		}
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	var c counts
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*duration)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	base := rng.Int63()

	tick := time.NewTicker(interval)
	defer tick.Stop()
	var n int64
	for now := time.Now(); now.Before(deadline); now = <-tick.C {
		n++
		seq := n
		c.launched.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if len(plans) > 0 && *abuseEvery > 0 && seq%*abuseEvery == 0 {
				runAbuse(&c, *addr, plans[(seq/(*abuseEvery))%int64(len(plans))], client)
				return
			}
			seed := base + seq
			if !*unique {
				seed = base + seq%int64(*pool)
			}
			body := map[string]interface{}{
				"program": program(seed),
				"tenant":  fmt.Sprintf("t%d", seq%int64(*tenants)),
			}
			if *timeoutMS > 0 {
				body["timeout_ms"] = *timeoutMS
			}
			submit(&c, client, *addr, body)
		}()
	}
	wg.Wait()

	s := c.summary()
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	} else {
		fmt.Printf("ilploadgen: %d launched: %d ok (%d cached, %d durable), %d shed, %d client-err, %d server-err, %d transport\n",
			s.Launched, s.OK, s.Cached, s.Durable, s.Shed, s.ClientErrors, s.ServerErrors, s.Transport)
		if len(plans) > 0 {
			fmt.Printf("ilploadgen: abuse: %d oversized, %d slow-loris cut, %d disconnects\n",
				s.Oversized, s.LorisCut, s.Disconnects)
		}
	}
	code := 0
	if *no5xx && s.ServerErrors > 0 {
		fmt.Fprintf(os.Stderr, "ilploadgen: FAIL: %d server errors (5xx), wanted none\n", s.ServerErrors)
		code = 1
	}
	if *reqShed && s.Shed == 0 {
		fmt.Fprintln(os.Stderr, "ilploadgen: FAIL: no 429 shed responses observed, wanted at least one")
		code = 1
	}
	if s.ShedNoRetry > 0 {
		fmt.Fprintf(os.Stderr, "ilploadgen: FAIL: %d 429s lacked a Retry-After header\n", s.ShedNoRetry)
		code = 1
	}
	os.Exit(code)
}

// submit posts one well-formed job and tallies the response class.
func submit(c *counts, client *http.Client, addr string, body map[string]interface{}) {
	raw, err := json.Marshal(body)
	if err != nil {
		fail(err)
	}
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		c.transport.Add(1)
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		c.ok.Add(1)
		var doc struct {
			Cached  bool `json:"cached"`
			Durable bool `json:"durable"`
		}
		if json.NewDecoder(resp.Body).Decode(&doc) == nil {
			if doc.Cached {
				c.cached.Add(1)
			}
			if doc.Durable {
				c.durable.Add(1)
			}
		}
	case resp.StatusCode == http.StatusTooManyRequests:
		c.shed.Add(1)
		if resp.Header.Get("Retry-After") == "" {
			c.shedNoRetryAfter.Add(1)
		}
		io.Copy(io.Discard, resp.Body)
	case resp.StatusCode >= 500:
		c.serverErr.Add(1)
		io.Copy(io.Discard, resp.Body)
	default:
		c.clientErr.Add(1)
		io.Copy(io.Discard, resp.Body)
	}
}

// runAbuse executes one abusive request of the named plan.
func runAbuse(c *counts, addr, plan string, client *http.Client) {
	switch plan {
	case "oversize":
		// A body past any sane limit; the daemon must answer 413, not
		// buffer it into memory trouble.
		c.oversized.Add(1)
		junk := bytes.Repeat([]byte("x"), 9<<20)
		resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(junk))
		if err != nil {
			c.transport.Add(1)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusRequestEntityTooLarge:
			c.clientErr.Add(1)
		case resp.StatusCode >= 500:
			c.serverErr.Add(1)
		default:
			c.clientErr.Add(1)
		}
	case "slowloris":
		slowloris(c, addr)
	case "disconnect":
		// Begin an upload, then vanish mid-body.  The daemon should
		// drop the connection and move on; there is no response to
		// classify.
		c.disconnects.Add(1)
		ctx, cancel := context.WithCancel(context.Background())
		pr, pw := io.Pipe()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+"/v1/jobs", pr)
		if err != nil {
			cancel()
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = 1 << 20
		go func() {
			pw.Write([]byte(`{"program":"int ma`))
			time.Sleep(50 * time.Millisecond)
			cancel()
			pw.CloseWithError(context.Canceled)
		}()
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
	}
}

// slowloris trickles a request at a byte every few hundred milliseconds
// and expects the daemon's read timeout to cut the connection rather
// than let it pin a worker forever.
func slowloris(c *counts, addr string) {
	host := strings.TrimPrefix(strings.TrimPrefix(addr, "http://"), "https://")
	host = strings.TrimSuffix(host, "/")
	conn, err := net.DialTimeout("tcp", host, 5*time.Second)
	if err != nil {
		c.transport.Add(1)
		return
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /v1/jobs HTTP/1.1\r\nHost: %s\r\nContent-Type: application/json\r\nContent-Length: 1000000\r\n\r\n", host)
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := conn.Write([]byte("{")); err != nil {
			// The server cut us off — exactly the defense under test.
			c.lorisCut.Add(1)
			return
		}
		time.Sleep(300 * time.Millisecond)
	}
	// Ninety seconds of tolerated trickle means the read timeout never
	// fired; count it against the server.
	c.serverErr.Add(1)
}

// fail reports a fatal error on stderr and exits non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilploadgen:", err)
	os.Exit(1)
}
