// Command ilplimitw is the distributed suite fabric's worker: it joins
// an `ilplimit -coordinator` run, pulls benchmark cells over the fabric
// wire protocol, executes each through the same pipeline a local run
// uses, and streams the results back.  Start any number of workers
// against one coordinator; work-stealing pull dispatch balances the
// cells across them, and the coordinator's merged output is
// byte-identical to a single-process run.
//
// Usage:
//
//	ilplimitw -coordinator http://127.0.0.1:7070       # join a run
//	ilplimitw -coordinator :7070 -id w1 -slots 2       # named, two cells at once
//	ilplimitw -coordinator :7070 -serial               # single-goroutine analysis
//	ilplimitw -coordinator :7070 -rejoin 2m            # outlive a coordinator restart
//	ilplimitw -coordinator :7070 -v                    # progress on stderr
//
// A worker whose binary or defaults drifted from the coordinator's
// configuration is refused at join time (fingerprint mismatch) rather
// than allowed to contribute incompatible results.  The worker exits 0
// when the coordinator reports the run complete, non-zero on any fatal
// error.  See DESIGN.md §13 for the protocol.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"ilplimit/internal/fabric"
	"ilplimit/internal/faultinject"
	"ilplimit/internal/telemetry"
)

func main() {
	var (
		coord   = flag.String("coordinator", "", "coordinator base URL (required; host:port is assumed http)")
		id      = flag.String("id", "", "worker name in leases and telemetry (default w<pid>)")
		slots   = flag.Int("slots", 1, "cells to run concurrently (each cell already fans out across cores)")
		poll    = flag.Duration("poll", 150*time.Millisecond, "idle re-lease interval while no cell is available")
		serial  = flag.Bool("serial", false, "step all analyzers in one goroutine instead of the parallel chunked replay")
		timeout = flag.Duration("timeout", 0, "give up after this duration (0 = run until the coordinator says done)")
		rejoin  = flag.Duration("rejoin", time.Minute, "tolerate a coordinator outage (crash, restart) for this long, retrying with jittered backoff, before giving up")
		fault   = flag.String("fault", "", "fabric fault plan, e.g. kill-after-leases=1,drop-completes=1 (testing only)")
		cache   = flag.String("trace-cache", "", "worker-local annotated trace store: cells for the same benchmark reuse one traced run instead of re-tracing per cell")
		verbose = flag.Bool("v", false, "log worker progress to stderr")
		version = flag.Bool("version", false, "print build provenance and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("ilplimitw %s %s\n", telemetry.GitRevision(), runtime.Version())
		return
	}
	if *coord == "" {
		fail(fmt.Errorf("-coordinator is required (the address `ilplimit -coordinator` announced)"))
	}
	base := *coord
	if !strings.Contains(base, "://") {
		if strings.HasPrefix(base, ":") {
			base = "127.0.0.1" + base
		}
		base = "http://" + base
	}
	plan, err := faultinject.ParseFabricPlan(*fault)
	if err != nil {
		fail(err)
	}
	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	w := &fabric.Worker{
		Base:       base,
		ID:         *id,
		Slots:      *slots,
		Poll:       *poll,
		Serial:     *serial,
		Progress:   progress,
		Plan:       plan,
		RejoinWait: *rejoin,
		TraceStore: *cache,
	}
	if err := w.Run(ctx); err != nil {
		fail(err)
	}
}

// fail reports a fatal error on stderr and exits non-zero.
func fail(err error) {
	fmt.Fprintln(os.Stderr, "ilplimitw:", err)
	os.Exit(1)
}
