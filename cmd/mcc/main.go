// Command mcc is the mini-C compiler driver: it compiles a source file to
// textual assembly (the format internal/asm accepts), and can optionally
// assemble and run the result.
//
// Usage:
//
//	mcc prog.c                # assembly on stdout
//	mcc -run prog.c           # compile, assemble, execute; program output
//	mcc -bench espresso       # emit the generated source of a suite entry
//	mcc -bench awk -run       # run a suite benchmark directly
//	mcc -scale 4 -bench awk   # at a larger scale
package main

import (
	"flag"
	"fmt"
	"os"

	"ilplimit/internal/asm"
	"ilplimit/internal/bench"
	"ilplimit/internal/minic"
	"ilplimit/internal/vm"
)

func main() {
	var (
		run       = flag.Bool("run", false, "assemble and execute instead of printing assembly")
		benchName = flag.String("bench", "", "use a benchmark suite program instead of a file")
		scale     = flag.Int("scale", 1, "benchmark scale factor")
		source    = flag.Bool("source", false, "with -bench: print the generated mini-C source")
		stats     = flag.Bool("stats", false, "with -run: print executed instruction count to stderr")
		ifconvert = flag.Bool("ifconvert", false, "enable guarded-instruction if-conversion")
		ast       = flag.Bool("ast", false, "print the parsed AST instead of assembly")
	)
	flag.Parse()

	var src string
	switch {
	case *benchName != "":
		b, err := bench.ByName(*benchName)
		if err != nil {
			fail(err)
		}
		src = b.Source(*scale)
		if *source {
			fmt.Print(src)
			return
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(data)
	default:
		fail(fmt.Errorf("usage: mcc [-run] [-stats] (FILE | -bench NAME [-source])"))
	}

	if *ast {
		prog, err := minic.Parse(src)
		if err != nil {
			fail(err)
		}
		fmt.Print(minic.DumpAST(prog))
		return
	}

	asmText, err := minic.CompileOpts(src, minic.Options{IfConvert: *ifconvert})
	if err != nil {
		fail(err)
	}
	if !*run {
		fmt.Print(asmText)
		return
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		fail(err)
	}
	machine := vm.New(prog)
	machine.StepLimit = 1 << 34
	if err := machine.Run(nil); err != nil {
		fail(err)
	}
	fmt.Print(machine.Output())
	if *stats {
		fmt.Fprintf(os.Stderr, "executed %d instructions (%d static)\n",
			machine.Steps, len(prog.Instrs))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mcc:", err)
	os.Exit(1)
}
