// Command doccheck fails the build when exported API lacks documentation.
// It parses the non-test Go files of each directory given on the command
// line and reports every exported top-level identifier — function, method,
// type, const or var group — without a doc comment, plus packages missing
// a package comment.  Files carrying the standard "Code generated ...
// DO NOT EDIT." header are exempt: their documentation burden lies with
// the generator that emits them.  The `make docs` target runs it over the
// whole module so godoc stays complete as the API grows.
//
// Usage:
//
//	doccheck DIR [DIR...]
//	go run ./cmd/doccheck . ./internal/* ./cmd/*
//
// Exit status is non-zero when any identifier is undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR [DIR...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		problems, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory and lists its documentation gaps.
// Directories without Go files are skipped silently so shell globs can
// pass non-package paths.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		for name, f := range pkg.Files {
			// Generated files (step_gen.go and friends) carry the
			// standard "Code generated ... DO NOT EDIT." header; their
			// documentation lives in the generator, not the output.
			if ast.IsGenerated(f) {
				continue
			}
			problems = append(problems, checkFile(fset, name, f)...)
		}
	}
	return problems, nil
}

// checkFile lists the undocumented exported declarations of one file.
func checkFile(fset *token.FileSet, name string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s is exported but undocumented",
			filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil && exportedRecv(d) {
				report(d.Pos(), declName(d))
			}
		case *ast.GenDecl:
			// A doc comment on the group covers every spec in it —
			// idiomatic for const blocks and factored var decls.
			if d.Doc != nil {
				continue
			}
			for i, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					if s.Doc != nil || s.Comment != nil {
						continue
					}
					// Inside a parenthesized group only the first spec
					// must carry the comment (the golint convention for
					// enum blocks); later members inherit the block's
					// context in godoc.
					if d.Lparen.IsValid() && i > 0 {
						continue
					}
					for _, id := range s.Names {
						if id.IsExported() {
							report(id.Pos(), fmt.Sprintf("%s %s", d.Tok, id.Name))
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a function is package-level or a method on
// an exported type; methods on unexported types are internal API and not
// godoc-visible, so they are exempt.
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// declName renders a function or method name the way godoc lists it.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	t := d.Recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return fmt.Sprintf("method %s.%s", id.Name, d.Name.Name)
	}
	return "method " + d.Name.Name
}
