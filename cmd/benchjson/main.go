// Command benchjson converts `go test -bench` output on stdin into the
// JSON baseline format committed as BENCH_limits.json, so benchmark
// regressions diff cleanly:
//
//	go test -bench BenchmarkGroup -benchmem -run '^$' . | go run ./cmd/benchjson
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// folded into the environment block or ignored.  The output document is
// a telemetry.BenchBaseline and carries the shared "schema_version"
// field, so the committed baseline versions together with the metrics
// snapshots in -json suite output.  The parsing itself lives in
// telemetry.ParseBenchOutput, shared with cmd/benchdiff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"ilplimit/internal/telemetry"
)

func main() {
	source := flag.String("source", "go test -bench | benchjson",
		"invocation recorded in the baseline's meta block")
	flag.Parse()
	base, err := telemetry.ParseBenchOutput(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The document schema (telemetry.BenchBaseline) is shared with the
	// metrics snapshots so both JSON artifacts version together.  The
	// meta block stamps the baseline with the revision and toolchain
	// that produced it, so a committed BENCH_limits.json says which
	// commit its numbers measure.
	meta := telemetry.NewRunMeta(*source)
	base.Meta = &meta
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
