// Command benchjson converts `go test -bench` output on stdin into the
// JSON baseline format committed as BENCH_limits.json, so benchmark
// regressions diff cleanly:
//
//	go test -bench BenchmarkGroup -benchmem -run '^$' . | go run ./cmd/benchjson
//
// Lines that are not benchmark results (headers, PASS/ok trailers) are
// folded into the environment block or ignored.  The output document is
// a telemetry.BenchBaseline and carries the shared "schema_version"
// field, so the committed baseline versions together with the metrics
// snapshots in -json suite output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"ilplimit/internal/telemetry"
)

var procSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	source := flag.String("source", "go test -bench | benchjson",
		"invocation recorded in the baseline's meta block")
	flag.Parse()
	// The document schema (telemetry.BenchBaseline) is shared with the
	// metrics snapshots so both JSON artifacts version together.  The
	// meta block stamps the baseline with the revision and toolchain
	// that produced it, so a committed BENCH_limits.json says which
	// commit its numbers measure.
	meta := telemetry.NewRunMeta(*source)
	base := telemetry.BenchBaseline{
		SchemaVersion: telemetry.SchemaVersion,
		Meta:          &meta,
		Benchmarks:    []telemetry.BenchRecord{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "goos:"):
			base.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			base.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			base.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name  N  value unit  [value unit ...]
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		b := telemetry.BenchRecord{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
		if m := procSuffix.FindStringSubmatch(b.Name); m != nil {
			b.Procs, _ = strconv.Atoi(m[1])
			b.Name = strings.TrimSuffix(b.Name, m[0])
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b.Iterations = n
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			b.Metrics[fields[i+1]] = v
		}
		base.Benchmarks = append(base.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(base); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
