package ilplimit_test

import (
	"fmt"

	"ilplimit"
)

const exampleSrc = `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 10; i++) s += i;
	print(s);
	return 0;
}
`

// ExampleRun compiles and executes a mini-C program on the study's VM.
func ExampleRun() {
	out, err := ilplimit.Run(exampleSrc)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output: 45
}

// ExampleMeasure analyzes one program under all seven machine models, in
// the paper's order.
func ExampleMeasure() {
	results, err := ilplimit.Measure(exampleSrc, ilplimit.MeasureOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), results[0].Model, results[len(results)-1].Model)
	// Output: 7 BASE ORACLE
}

// ExampleMeasure_metrics opts a measurement into pipeline telemetry: the
// registry records VM counters for both passes and replay-ring
// statistics, and costs nothing when left nil.
func ExampleMeasure_metrics() {
	reg := ilplimit.NewMetricsRegistry()
	if _, err := ilplimit.Measure(exampleSrc, ilplimit.MeasureOptions{Metrics: reg}); err != nil {
		panic(err)
	}
	s := reg.Snapshot()
	fmt.Println(s.Counters["vm.profile.runs"], s.Counters["vm.analysis.runs"], s.Counters["ring.events"] > 0)
	// Output: 1 1 true
}
