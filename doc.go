// Package ilplimit is the public API of the reproduction of Lam & Wilson,
// "Limits of Control Flow on Parallelism" (ISCA 1992).
//
// The paper measures upper bounds of instruction-level parallelism under
// seven abstract machine models that differ only in how they handle
// control flow: speculative execution (SP), control dependence analysis
// (CD) and following multiple flows of control (MF).  This package wires
// the full experimental stack together for the common cases:
//
//	// Measure a mini-C program under every machine model.
//	results, err := ilplimit.Measure(src, ilplimit.MeasureOptions{})
//
//	// Reproduce the paper's suite and render its tables.
//	suite, err := ilplimit.RunSuite(ilplimit.SuiteOptions{})
//	fmt.Print(suite.Table3())
//
// The building blocks (ISA, assembler, compiler, VM, CFG analyses,
// predictors, the trace-scheduling analyzer, the optimizer) live in the
// internal packages; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package ilplimit
