package ilplimit_test

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// ilpcEntries lists the committed trace files in a store directory.
func ilpcEntries(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.ilpc"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestCLITraceCache drives the annotated trace store end to end: a cold
// run populates it while emitting bytes identical to an uncached run, a
// warm run replays from it (same bytes, no tracing), every committed
// file passes tracegen -verify, and the wreckage of a SIGKILL mid-
// population — stray temp files, a temp promoted over a final name, a
// truncated final — only ever costs time: the next run falls back,
// repairs the store, and still matches the reference byte for byte.
func TestCLITraceCache(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	tracegen := buildCmd(t, "tracegen")
	benches := "awk,eqntott,irsim"
	nbench := len(strings.Split(benches, ","))

	ref, err := exec.Command(bin, "-bench", benches, "-json").Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Cold: populates while producing the reference bytes.
	dir := t.TempDir()
	cold, err := exec.Command(bin, "-bench", benches, "-json", "-trace-cache", dir).Output()
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if !bytes.Equal(cold, ref) {
		t.Errorf("cold cached output differs from reference (%d vs %d bytes)", len(cold), len(ref))
	}
	files := ilpcEntries(t, dir)
	if len(files) != nbench {
		t.Fatalf("cold run committed %d trace files, want %d: %v", len(files), nbench, files)
	}
	for _, f := range files {
		runCmd(t, tracegen, "-verify", f)
	}

	// Warm: replays from the store — identical bytes, and -v says so.
	warmCmd := exec.Command(bin, "-bench", benches, "-json", "-trace-cache", dir, "-v")
	var warmErr strings.Builder
	warmCmd.Stderr = &warmErr
	warm, err := warmCmd.Output()
	if err != nil {
		t.Fatalf("warm run: %v\n%s", err, warmErr.String())
	}
	if !bytes.Equal(warm, ref) {
		t.Errorf("warm cached output differs from reference (%d vs %d bytes)", len(warm), len(ref))
	}
	if !strings.Contains(warmErr.String(), "cached trace") {
		t.Errorf("warm run never reported a cached replay:\n%s", warmErr.String())
	}

	// SIGKILL mid-population: no cleanup, no deferred renames — the
	// crash the commit protocol exists for.
	dir2 := t.TempDir()
	kcmd := exec.Command(bin, "-bench", benches, "-json", "-trace-cache", dir2)
	kcmd.Stdout, kcmd.Stderr = nil, nil
	if err := kcmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(ilpcEntries(t, dir2)) == 0 {
		if time.Now().After(deadline) {
			_ = kcmd.Process.Kill()
			_ = kcmd.Wait()
			t.Fatal("no trace file committed within the deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := kcmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = kcmd.Wait()

	// Worst-case wreckage, manufactured deliberately: promote any
	// leftover temp file over its final name (a torn, footerless file
	// under a committed name), and truncate one genuinely committed file.
	tmps, err := filepath.Glob(filepath.Join(dir2, "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tmp := range tmps {
		base := filepath.Base(tmp)
		i := strings.Index(base, ".ilpc")
		if i < 0 {
			t.Fatalf("temp file %q does not embed a final name", base)
		}
		if err := os.Rename(tmp, filepath.Join(dir2, base[:i+len(".ilpc")])); err != nil {
			t.Fatal(err)
		}
	}
	survivors := ilpcEntries(t, dir2)
	fi, err := os.Stat(survivors[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(survivors[0], fi.Size()*2/3); err != nil {
		t.Fatal(err)
	}

	// The rerun must detect every damaged entry, fall back to live
	// tracing, match the reference exactly, and leave a repaired store.
	repaired, err := exec.Command(bin, "-bench", benches, "-json", "-trace-cache", dir2).Output()
	if err != nil {
		t.Fatalf("rerun over damaged store: %v", err)
	}
	if !bytes.Equal(repaired, ref) {
		t.Errorf("rerun over damaged store differs from reference (%d vs %d bytes)", len(repaired), len(ref))
	}
	files2 := ilpcEntries(t, dir2)
	if len(files2) != nbench {
		t.Fatalf("repaired store holds %d trace files, want %d: %v", len(files2), nbench, files2)
	}
	for _, f := range files2 {
		runCmd(t, tracegen, "-verify", f)
	}

	// And the repaired store serves a warm run.
	warm2, err := exec.Command(bin, "-bench", benches, "-json", "-trace-cache", dir2).Output()
	if err != nil {
		t.Fatalf("warm run over repaired store: %v", err)
	}
	if !bytes.Equal(warm2, ref) {
		t.Errorf("warm run over repaired store differs from reference")
	}
}

// TestCLITraceCacheChaos composes the trace store with the seeded chaos
// schedule: pipeline faults suppress population (a mutated chunk must
// never be committed) and warm hits stay valid under faults, so a
// converged chaos run — cold or warm store — produces the reference
// bytes.
func TestCLITraceCacheChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	benches := "awk,eqntott"

	ref, err := exec.Command(bin, "-bench", benches, "-json").Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	dir := t.TempDir()
	for _, phase := range []string{"cold", "warm"} {
		const attempts = 5
		ok := false
		for attempt := 1; attempt <= attempts; attempt++ {
			derived := fmt.Sprintf("7%02d", attempt)
			cmd := exec.Command(bin, "-bench", benches, "-json",
				"-chaos", derived, "-trace-cache", dir)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if runErr := cmd.Run(); runErr != nil {
				t.Logf("%s attempt %d (chaos %s) failed as scheduled: %v", phase, attempt, derived, runErr)
				continue
			}
			if got := stdout.Bytes(); !bytes.Equal(got, ref) {
				t.Fatalf("%s chaos run converged but differs from reference (%d vs %d bytes)", phase, len(got), len(ref))
			}
			ok = true
			break
		}
		if !ok {
			t.Fatalf("no clean %s chaos run within %d attempts", phase, attempts)
		}
		if phase == "cold" {
			// Populate cleanly so the second phase hits a warm store.
			if _, err := exec.Command(bin, "-bench", benches, "-json", "-trace-cache", dir).Output(); err != nil {
				t.Fatalf("clean populate: %v", err)
			}
			if n := len(ilpcEntries(t, dir)); n == 0 {
				t.Fatal("clean populate committed no trace files")
			}
		}
	}
}
