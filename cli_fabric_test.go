package ilplimit_test

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// coordProc is one running `ilplimit -coordinator` process with its
// announced address and captured output.
type coordProc struct {
	cmd    *exec.Cmd
	addr   string
	stdout bytes.Buffer

	mu     sync.Mutex
	stderr strings.Builder
	drain  sync.WaitGroup
}

// stderrText returns everything the coordinator wrote to stderr so far.
func (c *coordProc) stderrText() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stderr.String()
}

// wait lets the process finish and returns its error with stderr fully
// drained.
func (c *coordProc) wait() error {
	err := c.cmd.Wait()
	c.drain.Wait()
	return err
}

// startCoordinator launches ilplimit in coordinator mode and blocks
// until it announces its listener address on stderr.
func startCoordinator(t *testing.T, bin string, args ...string) *coordProc {
	t.Helper()
	c := &coordProc{cmd: exec.Command(bin, args...)}
	c.cmd.Stdout = &c.stdout
	stderr, err := c.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if c.cmd.ProcessState == nil {
			_ = c.cmd.Process.Kill()
			_ = c.cmd.Wait()
		}
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		c.mu.Lock()
		c.stderr.WriteString(line + "\n")
		c.mu.Unlock()
		if _, rest, ok := strings.Cut(line, "coordinator listening on "); ok {
			c.addr = strings.TrimSpace(rest)
			break
		}
	}
	if c.addr == "" {
		t.Fatalf("coordinator address never announced; stderr:\n%s", c.stderrText())
	}
	c.drain.Add(1)
	go func() {
		defer c.drain.Done()
		for sc.Scan() {
			c.mu.Lock()
			c.stderr.WriteString(sc.Text() + "\n")
			c.mu.Unlock()
		}
	}()
	return c
}

// TestCLIFabricByteIdentical is the tentpole's acceptance check: a
// suite distributed across two ilplimitw workers must write stdout and
// a journal byte-identical to the single-process run of the same
// configuration.
func TestCLIFabricByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	binw := buildCmd(t, "ilplimitw")
	benches := "awk,eqntott,irsim"

	dirL, dirD := t.TempDir(), t.TempDir()
	ref, err := exec.Command(bin, "-bench", benches, "-json", "-resume", dirL).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	coord := startCoordinator(t, bin, "-coordinator", "127.0.0.1:0", "-bench", benches, "-json", "-resume", dirD)
	w1 := exec.Command(binw, "-coordinator", coord.addr, "-id", "w1")
	w2 := exec.Command(binw, "-coordinator", coord.addr, "-id", "w2")
	for _, w := range []*exec.Cmd{w1, w2} {
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coord.stderrText())
	}
	for i, w := range []*exec.Cmd{w1, w2} {
		if err := w.Wait(); err != nil {
			t.Errorf("worker %d: %v", i+1, err)
		}
	}

	if got := coord.stdout.Bytes(); !bytes.Equal(got, ref) {
		t.Errorf("distributed stdout differs from local run (%d vs %d bytes)", len(got), len(ref))
	}
	jl, err := os.ReadFile(filepath.Join(dirL, "journal.ilpj"))
	if err != nil {
		t.Fatal(err)
	}
	jd, err := os.ReadFile(filepath.Join(dirD, "journal.ilpj"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jl, jd) {
		t.Errorf("distributed journal differs from local run (%d vs %d bytes)", len(jd), len(jl))
	}
}

// TestCLIFabricWorkerKill injects the failure matrix's worker-crash
// row end to end: one of two workers SIGKILLs itself (exit 137)
// immediately after leasing a cell, the coordinator's lease watchdog
// requeues that cell onto the survivor, and the merged output must
// still be byte-identical to a single-process run.
func TestCLIFabricWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	binw := buildCmd(t, "ilplimitw")
	benches := "awk,eqntott,irsim"

	ref, err := exec.Command(bin, "-bench", benches, "-json").Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	coord := startCoordinator(t, bin, "-coordinator", "127.0.0.1:0", "-fabric-lease", "500ms", "-bench", benches, "-json", "-v")
	// The killer runs alone first so it is guaranteed to lease a cell
	// (a faster survivor could otherwise drain the queue before the
	// killer joins and the crash would never fire); its exit proves the
	// cell is now orphaned mid-run.
	killer := exec.Command(binw, "-coordinator", coord.addr, "-id", "killer", "-fault", "kill-after-leases=1")
	var exitErr *exec.ExitError
	if err := killer.Run(); !errors.As(err, &exitErr) || exitErr.ExitCode() != 137 {
		t.Fatalf("killer exited %v, want status 137 (the injected SIGKILL)", err)
	}
	survivor := exec.Command(binw, "-coordinator", coord.addr, "-id", "survivor")
	if err := survivor.Start(); err != nil {
		t.Fatal(err)
	}
	if err := coord.wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coord.stderrText())
	}
	if err := survivor.Wait(); err != nil {
		t.Errorf("survivor: %v", err)
	}

	if got := coord.stdout.Bytes(); !bytes.Equal(got, ref) {
		t.Errorf("post-kill distributed stdout differs from local run (%d vs %d bytes)", len(got), len(ref))
	}
	if se := coord.stderrText(); !strings.Contains(se, "requeued") {
		t.Errorf("coordinator never requeued the killed worker's cell:\n%s", se)
	}
}
