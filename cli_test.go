package ilplimit_test

import (
	"bufio"
	"errors"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles one of the repository's commands into t's temp dir.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

func runCmd(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIIlplimit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")

	out := runCmd(t, bin, "-table", "1")
	for _, want := range []string{"awk", "tomcatv", "FORTRAN"} {
		if !strings.Contains(out, want) {
			t.Errorf("-table 1 missing %q:\n%s", want, out)
		}
	}
	out = runCmd(t, bin, "-bench", "irsim", "-table", "3")
	if !strings.Contains(out, "ORACLE") || !strings.Contains(out, "irsim") {
		t.Errorf("-bench irsim -table 3 malformed:\n%s", out)
	}
	out = runCmd(t, bin, "-bench", "irsim", "-figure", "6")
	if !strings.Contains(out, "<=100") {
		t.Errorf("-figure 6 malformed:\n%s", out)
	}
	out = runCmd(t, bin, "-bench", "irsim", "-json")
	if !strings.Contains(out, "\"SP-CD-MF\"") {
		t.Errorf("-json missing model keys:\n%s", out)
	}
	out = runCmd(t, bin, "-bench", "irsim", "-opt", "-table", "3")
	if !strings.Contains(out, "irsim") {
		t.Errorf("-opt run malformed:\n%s", out)
	}
	// Bad flags exit non-zero.
	if err := exec.Command(bin, "-table", "9").Run(); err == nil {
		t.Error("-table 9 should fail")
	}
	if err := exec.Command(bin, "-study", "nope").Run(); err == nil {
		t.Error("-study nope should fail")
	}
	if err := exec.Command(bin, "-bench", "zzz").Run(); err == nil {
		t.Error("-bench zzz should fail")
	}
}

func TestCLIMccAsmdumpTracegen(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	mcc := buildCmd(t, "mcc")
	asmdump := buildCmd(t, "asmdump")
	tracegen := buildCmd(t, "tracegen")

	dir := t.TempDir()
	cSrc := filepath.Join(dir, "p.c")
	if err := os.WriteFile(cSrc, []byte(`
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 10; i++) s += i;
	print(s);
	return 0;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	if out := runCmd(t, mcc, "-run", cSrc); strings.TrimSpace(out) != "45" {
		t.Errorf("mcc -run output %q, want 45", out)
	}
	asmOut := runCmd(t, mcc, cSrc)
	if !strings.Contains(asmOut, ".proc main") {
		t.Errorf("mcc assembly malformed:\n%s", asmOut)
	}
	sFile := filepath.Join(dir, "p.s")
	if err := os.WriteFile(sFile, []byte(asmOut), 0o644); err != nil {
		t.Fatal(err)
	}
	if out := runCmd(t, asmdump, sFile); !strings.Contains(out, "jal main") {
		t.Errorf("asmdump disassembly malformed:\n%s", out)
	}
	if out := runCmd(t, asmdump, "-cfg", sFile); !strings.Contains(out, "ctrl-dep") {
		t.Errorf("asmdump -cfg missing control dependences:\n%s", out)
	}
	if out := runCmd(t, asmdump, "-marks", "-c", cSrc); !strings.Contains(out, "U ") {
		t.Errorf("asmdump -marks missing unroll marks:\n%s", out)
	}
	if out := runCmd(t, mcc, "-bench", "latex", "-source"); !strings.Contains(out, "int main") {
		t.Errorf("mcc -bench -source malformed:\n%s", out)
	}
	if out := runCmd(t, mcc, "-ifconvert", cSrc); !strings.Contains(out, ".proc main") {
		t.Errorf("mcc -ifconvert malformed:\n%s", out)
	}

	trc := filepath.Join(dir, "p.trc")
	runCmd(t, tracegen, "-o", trc, cSrc)
	if fi, err := os.Stat(trc); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file not written: %v", err)
	}
	if out := runCmd(t, tracegen, "-in", trc, "-sym", cSrc, "-dump", "3"); !strings.Contains(out, "jal main") {
		t.Errorf("tracegen dump malformed:\n%s", out)
	}
	if out := runCmd(t, tracegen, "-summary", cSrc); !strings.Contains(out, "addi") {
		t.Errorf("tracegen summary malformed:\n%s", out)
	}
}

// TestCLIMetrics checks -metrics appends the telemetry report — stage
// timing table, VM throughput, ring statistics — after the regular
// output, and that -json carries the snapshot with its schema_version.
func TestCLIMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	out := runCmd(t, bin, "-bench", "irsim", "-table", "3", "-metrics")
	for _, want := range []string{
		"Pipeline stage timings (ms)",
		"irsim",
		"vm profile",
		"vm analysis",
		"ring",
		"occupancy high-water",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q:\n%s", want, out)
		}
	}
	out = runCmd(t, bin, "-bench", "irsim", "-json", "-metrics")
	for _, want := range []string{`"schema_version": 1`, `"stage.wall_ns"`, `"ring.chunk_latency_ns"`} {
		if !strings.Contains(out, want) {
			t.Errorf("-json -metrics output missing %q", want)
		}
	}
}

// TestCLIDebugAddr starts a run with -debug-addr on an ephemeral port
// and fetches live expvar and pprof pages while it executes.
func TestCLIDebugAddr(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	// -scale keeps the run alive long enough to probe the server.
	cmd := exec.Command(bin, "-bench", "espresso", "-scale", "4", "-debug-addr", "127.0.0.1:0")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stdout = nil
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatal("debug server address never announced on stderr")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if vars := get("/debug/vars"); !strings.Contains(vars, `"ilplimit"`) {
		t.Errorf("/debug/vars lacks the ilplimit metrics export:\n%.400s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index malformed:\n%.400s", idx)
	}
	// Drain stderr so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	if err := cmd.Wait(); err != nil {
		t.Fatalf("run with -debug-addr failed: %v", err)
	}
}

// TestCLIKillResume drives the crash-safe journal end to end: a suite
// run with -resume is killed with SIGKILL mid-run (no cleanup, no
// deferred writes — the crash the journal exists for), its journal tail
// is corrupted the way a torn write would, and the resumed run must
// still skip the benchmarks that completed before the kill and emit
// output byte-identical to an uninterrupted run.
func TestCLIKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	benches := "awk,ccom,eqntott,irsim,latex"

	// Reference: the uninterrupted run's exact bytes.
	ref, err := exec.Command(bin, "-bench", benches, "-json").Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Interrupted run: SIGKILL as soon as the journal holds at least one
	// completed benchmark.
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.ilpj")
	cmd := exec.Command(bin, "-bench", benches, "-json", "-resume", dir)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(jpath); err == nil && strings.Contains(string(data), " bench ") {
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("no benchmark journaled within the deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Simulate the torn write a crash mid-append leaves behind: a record
	// fragment with no trailing newline.  Recovery must drop it and keep
	// every complete record before it.
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("ilpj1 deadbeef bench {\"name\":\"tru"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run: must salvage the journal, skip completed work, and
	// reproduce the reference bytes exactly.
	resumed := exec.Command(bin, "-bench", benches, "-json", "-resume", dir, "-v")
	var stderr strings.Builder
	resumed.Stderr = &stderr
	out, err := resumed.Output()
	if err != nil {
		t.Fatalf("resumed run: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "corrupt tail") {
		t.Errorf("resumed run did not report the corrupt-tail salvage:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "resumed from journal") {
		t.Errorf("resumed run re-ran everything:\n%s", stderr.String())
	}
	if string(out) != string(ref) {
		t.Errorf("resumed output differs from the uninterrupted run (%d vs %d bytes)", len(out), len(ref))
	}
}

// TestCLITimeout drives the fault path end to end: a 1ms deadline on a
// scaled-up suite must abort cleanly (the vm.ErrCanceled message, not a
// hang or a panic) and exit non-zero while still printing the report
// frame for whatever survived.
func TestCLITimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimit")
	cmd := exec.Command(bin, "-timeout", "1ms", "-scale", "8", "-table", "3")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("deadline run exited zero:\n%s", out)
	}
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("run failed without an exit code: %v", err)
	}
	if !strings.Contains(string(out), "canceled") {
		t.Errorf("output does not mention cancellation:\n%s", out)
	}
	if !strings.Contains(string(out), "failed") {
		t.Errorf("output lacks the failure summary:\n%s", out)
	}
}
