GO ?= go

.PHONY: build test vet race faultcheck bench bench-baseline

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Concurrency gate: the parallel trace fan-out (internal/limits) and the
# suite-level job fan-out (internal/harness) must stay race-clean.
race: faultcheck
	$(GO) vet ./...
	$(GO) test -race ./internal/limits ./internal/harness

# Robustness gate: deterministic fault injection (trap, consumer panic,
# chunk corruption, stalled consumer, cancellation) under the race
# detector, plus a short fuzz of the trace-file reader.
faultcheck:
	$(GO) test -race ./internal/faultinject
	$(GO) test -fuzz FuzzReader -fuzztime 10s -run FuzzReader ./internal/trace

# Group-scheduling benchmarks: serial visitor vs chunked parallel replay.
bench:
	$(GO) test -bench BenchmarkGroup -benchmem -benchtime 3x -run '^$$' .

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -bench BenchmarkGroup -benchmem -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_limits.json
	cat BENCH_limits.json
