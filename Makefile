GO ?= go

.PHONY: build test vet docs check generate generate-check race faultcheck soak \
	soak-server soak-fabric soak-chaos soak-cache bench bench-baseline benchdiff \
	bench-smoke

# Seeds for the chaos soak (comma-separated).  Pinned by default so CI
# is reproducible; override to sweep: ILP_CHAOS_SEEDS=1,2,3 make soak-chaos
ILP_CHAOS_SEEDS ?= 7,23

# Benchmarks captured in BENCH_limits.json and gated by benchdiff: the
# group-scheduling fan-out (live and warm-cache), the per-model analyzer
# hot loop, the producer-side annotate/predecode stage, and the trace
# store's write/read paths.
BENCH_PATTERN = 'BenchmarkGroup|BenchmarkAnalyzerStep|BenchmarkAnnotate|BenchmarkTraceStore'

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Documentation gate: vet, formatting, and godoc completeness — every
# exported identifier of every package must carry a doc comment
# (cmd/doccheck), so `go doc` stays a complete reference as the API grows.
docs:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) run ./cmd/doccheck . ./internal/* ./cmd/*

# Regenerate all go:generate outputs (the specialized analyzer steppers
# in internal/limits/step_gen.go).
generate:
	$(GO) generate ./...

# Drift gate: regenerating must be a no-op against the committed
# outputs, so cmd/stepgen and step_gen.go can never fall out of sync.
generate-check: generate
	@git diff --exit-code -- '*_gen.go' || \
		{ echo "generated code is stale: run 'make generate' and commit"; exit 1; }

# The default local gate: everything short of the long benchmarks.
check: build generate-check docs test race soak soak-fabric soak-chaos soak-cache

# Trace-store soak: the store's commit/fallback protocol under the race
# detector, the harness-level cached-vs-live equivalences, then the CLI
# round-trips — cold populate byte-identical to uncached, warm replay,
# SIGKILL mid-population with deliberate wreckage (promoted temp files,
# truncated finals) repaired on the next run, and the chaos composition.
soak-cache:
	$(GO) test -race ./internal/tracestore
	$(GO) test -race -run TraceCache ./internal/harness
	$(GO) test -race -run TestCLITraceCache .

# Concurrency gate: the parallel trace fan-out (internal/limits) and the
# suite-level job fan-out (internal/harness) must stay race-clean.
race: faultcheck
	$(GO) vet ./...
	$(GO) test -race ./internal/limits ./internal/harness ./internal/tracestore

# Robustness gate: deterministic fault injection (trap, consumer panic,
# chunk corruption, stalled consumer, cancellation) under the race
# detector, plus a short fuzz budget split between the trace-file reader
# and the daemon's request decoder — the two untrusted-input frontiers.
faultcheck:
	$(GO) test -race ./internal/faultinject
	$(GO) test -fuzz FuzzReader -fuzztime 10s -run FuzzReader ./internal/trace
	$(GO) test -fuzz FuzzChunkFile -fuzztime 10s -run FuzzChunkFile ./internal/trace
	$(GO) test -fuzz FuzzDecodeBody -fuzztime 10s -run FuzzDecodeBody ./internal/server

# Resilience gate: the crash-safe journal, retry, and resume paths under
# the race detector, then the kill-9/resume CLI round-trip twice — the
# second pass catches state the first one leaks.
soak: faultcheck
	$(GO) test -race ./internal/journal
	$(GO) test -race -run 'Resume|Retr|Invariant|Watchdog' ./internal/harness
	$(GO) test -race -count 2 -run TestCLIKillResume .

# Fabric soak: the distributed coordinator/worker path under the race
# detector (lease expiry, stale-completion drops, requeue), then the two
# CLI round-trips — a 2-worker run byte-identical to a local one, and
# byte-identical again after one worker SIGKILLs itself mid-cell.
soak-fabric:
	$(GO) test -race ./internal/fabric
	$(GO) test -race -run TestCLIFabric .

# Chaos soak: the crash-consistency layer under the race detector — the
# injectable-fault filesystem and the journal's salvage sweeps — then
# the seeded chaos CLI round-trips: every pinned seed's fault schedule
# (VM traps, analyzer panics, slow consumers, journal write faults)
# must converge to output byte-identical to a clean run, and a
# SIGKILLed coordinator restarted with -resume must finish its
# distributed run byte-identical to a local one.
soak-chaos:
	$(GO) test -race ./internal/iofault ./internal/journal ./internal/fabric
	ILP_CHAOS_SEEDS=$(ILP_CHAOS_SEEDS) \
		$(GO) test -race -run 'TestCLIChaosSoak|TestCLICoordinatorKillResume' .

# Service soak: the daemon under the race detector (admission, quotas,
# single-flight cache, drain), then the live overload round-trip — a
# daemon at halved capacity under 2× open-loop load plus the abusive
# plans must shed with 429 + Retry-After, answer zero 5xx, survive a
# SIGKILL mid-suite-job, and drain back to an idle healthz.
soak-server:
	$(GO) test -race ./internal/server
	$(GO) test -race -run 'TestCLIVersion|TestCLIDaemon|TestCLIServerSoak' .

# Group-scheduling benchmarks (serial visitor vs chunked parallel
# replay) plus the per-model analyzer hot-loop microbenchmarks.
bench:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 3x -run '^$$' .

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_limits.json
	cat BENCH_limits.json

# Regression gate: rerun the baseline benchmarks and fail if any shared
# benchmark's ns/op regressed more than 15% vs BENCH_limits.json.
benchdiff:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_limits.json -threshold 15

# CI smoke: one iteration of every baseline benchmark, parsed through
# benchdiff with the gate disabled (-threshold 0 would still fail on
# noise at 1 iteration, so a generous bar just proves the bench + diff
# plumbing runs end to end on shared runners).
bench-smoke:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 1x -run '^$$' . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_limits.json -threshold 400
