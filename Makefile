GO ?= go

.PHONY: build test vet race bench bench-baseline

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Concurrency gate: the parallel trace fan-out (internal/limits) and the
# suite-level job fan-out (internal/harness) must stay race-clean.
race:
	$(GO) vet ./...
	$(GO) test -race ./internal/limits ./internal/harness

# Group-scheduling benchmarks: serial visitor vs chunked parallel replay.
bench:
	$(GO) test -bench BenchmarkGroup -benchmem -benchtime 3x -run '^$$' .

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -bench BenchmarkGroup -benchmem -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_limits.json
	cat BENCH_limits.json
