GO ?= go

.PHONY: build test vet docs check race faultcheck soak bench bench-baseline benchdiff

# Benchmarks captured in BENCH_limits.json and gated by benchdiff: the
# group-scheduling fan-out plus the per-model analyzer hot loop.
BENCH_PATTERN = 'BenchmarkGroup|BenchmarkAnalyzerStep'

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Documentation gate: vet, formatting, and godoc completeness — every
# exported identifier of every package must carry a doc comment
# (cmd/doccheck), so `go doc` stays a complete reference as the API grows.
docs:
	$(GO) vet ./...
	@fmtout=$$(gofmt -l .); if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) run ./cmd/doccheck . ./internal/* ./cmd/*

# The default local gate: everything short of the long benchmarks.
check: build docs test race soak

# Concurrency gate: the parallel trace fan-out (internal/limits) and the
# suite-level job fan-out (internal/harness) must stay race-clean.
race: faultcheck
	$(GO) vet ./...
	$(GO) test -race ./internal/limits ./internal/harness

# Robustness gate: deterministic fault injection (trap, consumer panic,
# chunk corruption, stalled consumer, cancellation) under the race
# detector, plus a short fuzz of the trace-file reader.
faultcheck:
	$(GO) test -race ./internal/faultinject
	$(GO) test -fuzz FuzzReader -fuzztime 10s -run FuzzReader ./internal/trace

# Resilience gate: the crash-safe journal, retry, and resume paths under
# the race detector, then the kill-9/resume CLI round-trip twice — the
# second pass catches state the first one leaks.
soak: faultcheck
	$(GO) test -race ./internal/journal
	$(GO) test -race -run 'Resume|Retr|Invariant|Watchdog' ./internal/harness
	$(GO) test -race -count 2 -run TestCLIKillResume .

# Group-scheduling benchmarks (serial visitor vs chunked parallel
# replay) plus the per-model analyzer hot-loop microbenchmarks.
bench:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 3x -run '^$$' .

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchjson > BENCH_limits.json
	cat BENCH_limits.json

# Regression gate: rerun the baseline benchmarks and fail if any shared
# benchmark's ns/op regressed more than 15% vs BENCH_limits.json.
benchdiff:
	$(GO) test -bench $(BENCH_PATTERN) -benchmem -benchtime 3x -run '^$$' . \
		| $(GO) run ./cmd/benchdiff -baseline BENCH_limits.json -threshold 15
