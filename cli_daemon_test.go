package ilplimit_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches an ilplimitd binary with the given extra flags
// on an ephemeral port and returns its base URL plus the running
// command.  The caller owns shutdown (Kill or SIGTERM + Wait).
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if strings.Contains(line, "debug server listening") {
			continue
		}
		if _, rest, ok := strings.Cut(line, "listening on "); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("daemon address never announced on stderr")
	}
	// Keep draining stderr so the daemon never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return "http://" + addr, cmd
}

// stopDaemon sends SIGTERM and waits for a clean exit.
func stopDaemon(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon did not exit cleanly: %v", err)
	}
}

// postDaemonJob submits one JSON job and returns status, the decoded
// envelope, and the raw result bytes.
func postDaemonJob(t *testing.T, base string, body map[string]interface{}) (int, map[string]interface{}, json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Cached  bool            `json:"cached"`
		Durable bool            `json:"durable"`
		Result  json.RawMessage `json:"result"`
		Error   string          `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("status %d, undecodable body %q", resp.StatusCode, data)
	}
	return resp.StatusCode, map[string]interface{}{
		"cached": env.Cached, "durable": env.Durable, "error": env.Error,
	}, env.Result
}

// TestCLIVersion checks the -version satellite on every binary that
// grew it: a one-line build-provenance stamp with the toolchain.
func TestCLIVersion(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	for _, name := range []string{"ilplimit", "ilplimitd", "ilploadgen"} {
		bin := buildCmd(t, name)
		out := runCmd(t, bin, "-version")
		if !strings.HasPrefix(out, name+" ") || !strings.Contains(out, "go1.") {
			t.Errorf("%s -version = %q, want %q prefix and a toolchain", name, out, name)
		}
	}
}

// TestCLIDaemon drives the daemon end to end over real HTTP: a program
// job, a cache hit on resubmission, healthz, the expvar export on
// -debug-addr, and a graceful SIGTERM exit.
func TestCLIDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimitd")
	base, cmd := startDaemon(t, bin, "-debug-addr", "127.0.0.1:0", "-watchdog", "-1s")
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	body := map[string]interface{}{"program": `
int main() {
	int i, s;
	s = 0;
	for (i = 0; i < 40; i++) { if (i - (i/2)*2 == 0) s += i; else s -= 1; }
	print(s);
	return 0;
}
`}
	status, env, result := postDaemonJob(t, base, body)
	if status != http.StatusOK {
		t.Fatalf("job: status %d (%v)", status, env)
	}
	if !strings.Contains(string(result), `"ORACLE"`) {
		t.Errorf("result lacks the model matrix: %s", result)
	}
	status, env, again := postDaemonJob(t, base, body)
	if status != http.StatusOK || env["cached"] != true {
		t.Errorf("resubmission: status %d, cached %v", status, env["cached"])
	}
	if !bytes.Equal(result, again) {
		t.Errorf("cached result differs from the computed one")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Ready      bool `json:"ready"`
		QueueDepth int  `json:"queue_depth"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !health.Ready || health.QueueDepth != 0 {
		t.Errorf("healthz: status %d, %+v", resp.StatusCode, health)
	}

	stopDaemon(t, cmd)
}

// TestCLIDaemonKillResume is the durability acceptance test: SIGKILL
// the daemon mid-suite-job, restart it on the same data directory, and
// the resubmitted job must resume the journaled benchmarks instead of
// re-running them and produce a result byte-identical to a fresh
// daemon's — then replay durably on a further resubmission.
func TestCLIDaemonKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	bin := buildCmd(t, "ilplimitd")
	dir := t.TempDir()
	body := map[string]interface{}{
		"benchmarks": []string{"irsim", "eqntott"}, "timeout_ms": 300000}

	// Reference result from a daemon with no durable state at all.
	refBase, refCmd := startDaemon(t, bin, "-watchdog", "-1s")
	status, _, ref := postDaemonJob(t, refBase, body)
	if status != http.StatusOK {
		t.Fatalf("reference job: status %d", status)
	}
	_ = refCmd.Process.Kill()
	_ = refCmd.Wait()

	// Run 1: submit, then SIGKILL as soon as the first benchmark of the
	// suite job has been journaled.
	base, cmd := startDaemon(t, bin, "-data", dir, "-watchdog", "-1s")
	go func() {
		// The response will die with the daemon; only its side effects
		// on the journal matter.
		raw, _ := json.Marshal(body)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(60 * time.Second)
	journaled := false
	for !journaled {
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			t.Fatal("no suite benchmark journaled before the deadline")
		}
		ents, _ := filepath.Glob(filepath.Join(dir, "job-*", "journal.ilpj"))
		for _, p := range ents {
			if data, err := os.ReadFile(p); err == nil && strings.Contains(string(data), " bench ") {
				journaled = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no cleanup at all
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Run 2: same data dir.  The per-job journal still holds the
	// completed benchmark (plus a stale writer lock from the kill);
	// resubmission must resume it, not re-run it.
	base2, cmd2 := startDaemon(t, bin, "-data", dir, "-watchdog", "-1s", "-debug-addr", "127.0.0.1:0")
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	status, _, resumed := postDaemonJob(t, base2, body)
	if status != http.StatusOK {
		t.Fatalf("resubmitted job: status %d", status)
	}
	if !bytes.Equal(ref, resumed) {
		t.Errorf("resumed result differs from the uninterrupted reference:\n%s\n%s", ref, resumed)
	}

	// Run 3 (same daemon): the completed result must now replay from
	// the durable results journal, byte for byte.
	status, env, replayed := postDaemonJob(t, base2, body)
	if status != http.StatusOK {
		t.Fatalf("replayed job: status %d", status)
	}
	if env["cached"] != true && env["durable"] != true {
		t.Errorf("replayed result came from neither cache nor journal: %v", env)
	}
	if !bytes.Equal(resumed, replayed) {
		t.Errorf("replayed result differs from the resumed one")
	}

	// Run 4: a fresh daemon process on the same directory must serve
	// the result durably without any execution.
	stopDaemon(t, cmd2)
	base3, cmd3 := startDaemon(t, bin, "-data", dir, "-watchdog", "-1s")
	defer func() {
		_ = cmd3.Process.Kill()
		_ = cmd3.Wait()
	}()
	status, env, durable := postDaemonJob(t, base3, body)
	if status != http.StatusOK || env["durable"] != true {
		t.Fatalf("durable replay after restart: status %d, %v", status, env)
	}
	if !bytes.Equal(resumed, durable) {
		t.Errorf("durable replay differs from the original result")
	}
	stopDaemon(t, cmd3)
}

// TestCLIServerSoak is the overload acceptance test, shared with `make
// soak-server`: a daemon at deliberately halved capacity takes 2× its
// throughput in open-loop load plus the abusive plans, and must shed
// explicitly (429 + Retry-After), never 5xx, and come back to an idle
// ready healthz after the flood drains.
func TestCLIServerSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	daemon := buildCmd(t, "ilplimitd")
	loadgen := buildCmd(t, "ilploadgen")

	// Capacity: 2 workers × 100ms pinned service time = 20 jobs/s, queue
	// depth 4.  Offered: 40/s of unique (cache-busting) programs.
	base, cmd := startDaemon(t, daemon,
		"-workers", "2", "-queue-depth", "4", "-tenant-queue-depth", "2",
		"-tenant-quota", "1", "-exec-delay", "100ms", "-read-timeout", "1s",
		"-watchdog", "-1s")
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	out, err := exec.Command(loadgen,
		"-addr", base, "-rate", "40", "-duration", "3s", "-tenants", "3",
		"-unique", "-abuse", "oversize,slowloris,disconnect", "-abuse-every", "7",
		"-require-shed", "-forbid-5xx", "-json").CombinedOutput()
	if err != nil {
		t.Fatalf("ilploadgen failed: %v\n%s", err, out)
	}
	var sum map[string]int64
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("summary not JSON: %v\n%s", err, out)
	}
	if sum["ok"] == 0 || sum["shed"] == 0 {
		t.Errorf("soak: ok = %d, shed = %d; want both > 0\n%s", sum["ok"], sum["shed"], out)
	}
	if sum["server_errors"] != 0 {
		t.Errorf("soak: %d server errors\n%s", sum["server_errors"], out)
	}
	if sum["slowloris_cut"] == 0 {
		t.Errorf("soak: slow-loris connections were never cut\n%s", out)
	}

	// Post-flood: the daemon must drain back to ready with empty queues.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Ready      bool `json:"ready"`
			QueueDepth int  `json:"queue_depth"`
			Running    int  `json:"running"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if derr == nil && health.Ready && health.QueueDepth == 0 && health.Running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never drained to idle: %+v", health)
		}
		time.Sleep(100 * time.Millisecond)
	}
	stopDaemon(t, cmd)
}
