// Quickstart: compile a small mini-C program, trace it, and measure the
// limits of parallelism under all seven abstract machine models of
// Lam & Wilson (ISCA 1992).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ilplimit/internal/asm"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/predict"
	"ilplimit/internal/vm"
)

const program = `
int a[64];
int partition_sum(int n) {
	int i, s;
	s = 0;
	for (i = 0; i < n; i++) {
		if (a[i] & 1) s += a[i];
	}
	return s;
}
int main() {
	int i;
	for (i = 0; i < 64; i++) a[i] = i * 37 & 255;
	print(partition_sum(64));
	return 0;
}
`

func main() {
	// 1. Compile and assemble.
	asmText, err := minic.Compile(program)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Profile branch outcomes with the same input (the paper's static
	//    prediction upper bound).
	machine := vm.NewSized(prog, 1<<16)
	prof := predict.NewProfile(prog)
	if err := machine.Run(prof.Record); err != nil {
		log.Fatal(err)
	}

	// 3. Build the static analyses (CFGs, control dependence, induction
	//    variables) and schedule the trace under every model.
	st, err := limits.NewStatic(prog, prof.Predictor())
	if err != nil {
		log.Fatal(err)
	}
	machine.Reset()
	group := limits.NewGroup(st, len(machine.Mem), limits.AllModels(), true)
	if err := machine.Run(group.Visitor()); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %14s %10s %12s\n", "model", "instructions", "cycles", "parallelism")
	for _, r := range group.Results() {
		fmt.Printf("%-10s %14d %10d %12.2f\n",
			r.Model, r.Instructions, r.Cycles, r.Parallelism())
	}
}
