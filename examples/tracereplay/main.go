// This example demonstrates the trace-file workflow the original study
// used with pixie: record a benchmark's dynamic trace once, persist it,
// then replay the file through the limit analyzers as many times as
// needed without re-running the program.
//
//	go run ./examples/tracereplay
package main

import (
	"bytes"
	"fmt"
	"log"

	"ilplimit/internal/asm"
	"ilplimit/internal/bench"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/predict"
	"ilplimit/internal/trace"
	"ilplimit/internal/vm"
)

func main() {
	// Compile a small benchmark.
	b, err := bench.ByName("ccom")
	if err != nil {
		log.Fatal(err)
	}
	asmText, err := minic.Compile(b.Source(1))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		log.Fatal(err)
	}

	// Record: one execution, profiling branches and writing the trace.
	var file bytes.Buffer
	w, err := trace.NewWriter(&file)
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.NewSized(prog, 1<<20)
	prof := predict.NewProfile(prog)
	err = machine.Run(func(ev vm.Event) {
		prof.Record(ev)
		if err := w.Write(ev); err != nil {
			log.Fatal(err)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %d events (%d bytes, %.2f bytes/event)\n",
		w.Count(), file.Len(), float64(file.Len())/float64(w.Count()))

	// Replay: feed the persisted trace straight into the analyzers.
	st, err := limits.NewStatic(prog, prof.Predictor())
	if err != nil {
		log.Fatal(err)
	}
	group := limits.NewGroup(st, len(machine.Mem), limits.AllModels(), true)
	visit := group.Visitor()
	n, err := trace.Visit(bytes.NewReader(file.Bytes()), visit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d events\n\n", n)
	fmt.Printf("%-10s %12s\n", "model", "parallelism")
	for _, r := range group.Results() {
		fmt.Printf("%-10s %12.2f\n", r.Model, r.Parallelism())
	}
}
