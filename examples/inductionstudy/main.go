// This example reproduces the paper's §5.4 discussion in miniature: the
// effect of perfect loop unrolling on each machine model.  It analyzes a
// doubly nested loop (a small dense kernel with data-independent control
// flow) and a pointer-chasing loop (data-dependent control flow), showing
// that unrolling transforms the first but barely affects the second — the
// paper's distinction between matrix300/tomcatv and the non-numeric codes.
//
//	go run ./examples/inductionstudy
package main

import (
	"fmt"
	"log"

	"ilplimit/internal/asm"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/predict"
	"ilplimit/internal/vm"
)

const denseKernel = `
int a[32][32];
int main() {
	int i, j, s;
	for (i = 0; i < 32; i++)
		for (j = 0; j < 32; j++)
			a[i][j] = i * 32 + j;
	s = 0;
	for (i = 0; i < 32; i++)
		for (j = 0; j < 32; j++)
			s += a[j][i];
	print(s);
	return 0;
}
`

const pointerChase = `
int next[1024];
int val[1024];
int main() {
	int i, p, s, rounds;
	for (i = 0; i < 1024; i++) {
		next[i] = (i + 389) & 1023;   // a full 1024-cycle permutation
		val[i] = i * 3 & 63;
	}
	s = 0;
	p = 13;
	rounds = 0;
	// The loop exit depends on loaded data: unrolling cannot remove it,
	// and the p = next[p] chain serializes every model.
	while (p != 13 || rounds == 0) {
		s += val[p];
		p = next[p];
		rounds++;
	}
	print(s);
	print(rounds);
	return 0;
}
`

func analyze(name, src string) {
	asmText, err := minic.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.NewSized(prog, 1<<16)
	prof := predict.NewProfile(prog)
	if err := machine.Run(prof.Record); err != nil {
		log.Fatal(err)
	}
	st, err := limits.NewStatic(prog, prof.Predictor())
	if err != nil {
		log.Fatal(err)
	}
	machine.Reset()
	with := limits.NewGroup(st, len(machine.Mem), limits.AllModels(), true)
	without := limits.NewGroup(st, len(machine.Mem), limits.AllModels(), false)
	wv, wov := with.Visitor(), without.Visitor()
	if err := machine.Run(func(ev vm.Event) { wv(ev); wov(ev) }); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s\n", name)
	fmt.Printf("  %-9s %12s %12s %9s\n", "model", "plain", "unrolled", "change")
	wr, wor := with.Results(), without.Results()
	for i := range wr {
		plain, unrolled := wor[i].Parallelism(), wr[i].Parallelism()
		change := 0.0
		if plain > 0 {
			change = 100 * (unrolled - plain) / plain
		}
		fmt.Printf("  %-9s %12.2f %12.2f %+8.0f%%\n", wr[i].Model, plain, unrolled, change)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Effect of perfect loop unrolling (paper §5.4, Table 4):")
	fmt.Println()
	analyze("dense kernel (data-independent control flow, like matrix300):", denseKernel)
	analyze("pointer chase (data-dependent control flow, like the non-numeric codes):", pointerChase)
}
