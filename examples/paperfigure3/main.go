// This example reconstructs the worked example of the paper's Figures 2
// and 3: a small flow graph — a loop whose body chooses between two arms,
// followed by code that is control independent of the whole loop — traced
// and scheduled under each abstract machine model.  The program has no
// data dependences between its "work" instructions, so every difference in
// the schedules below comes purely from how each machine handles control
// flow, exactly as in the paper's illustration.
//
//	go run ./examples/paperfigure3
package main

import (
	"fmt"
	"log"
	"strings"

	"ilplimit/internal/asm"
	"ilplimit/internal/limits"
	"ilplimit/internal/predict"
	"ilplimit/internal/vm"
)

// The flow graph (paper Figure 2 analog).  Node numbers comment each
// instruction; bold-arc behaviour (the likely direction) is encoded in the
// forced predictions below, and the middle iteration mispredicts node 2.
const src = `
.data
cond: .word 1 0 1        # if-condition per iteration: arm A, arm B, arm A
.proc main
	li   $s0, 0          # n0: i = 0 (loop counter, removed by unrolling? no: kept — see predictions)
loop:
	la   $t0, cond
	add  $t0, $t0, $s0
	lw   $t1, 0($t0)     # n1: load this iteration's condition
	beqz $t1, armB       # n2: the if branch (mispredicts on iteration 2)
	li   $t2, 3          # n3: then arm
	j    join
armB:
	li   $t3, 4          # n4: else arm
join:
	addi $s0, $s0, 1     # n5a: i++
	li   $t4, 3
	blt  $s0, $t4, loop  # n5b: loop branch (predicted taken)
	li   $t5, 6          # n6: control independent of the loop
	li   $t6, 7          # n7: control independent of the loop
	halt
.endproc
`

func main() {
	prog, err := asm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	// Force the paper's "likely path": the if-branch predicted not taken
	// (arm A), the loop branch predicted taken.  Iteration 2 takes arm B,
	// so its if-branch mispredicts; the final loop exit also mispredicts.
	take := map[int]bool{}
	for i := range prog.Instrs {
		if prog.Instrs[i].Op.IsCondBranch() {
			switch prog.Instrs[i].TargetSym {
			case "armB":
				take[i] = false
			case "loop":
				take[i] = true
			}
		}
	}
	pred := predict.NewStaticPredictor(prog, take)
	st, err := limits.NewStatic(prog, pred)
	if err != nil {
		log.Fatal(err)
	}

	models := limits.AllModels()
	// Schedule under every model, recording each instruction's cycle.
	type sched struct {
		idx   int32
		cycle int64
	}
	schedules := make([][]sched, len(models))
	var traceIdx []int32
	for mi, m := range models {
		machine := vm.NewSized(prog, 1<<12)
		a := limits.NewAnalyzer(st, m, false, len(machine.Mem))
		mi := mi
		a.OnSchedule = func(idx int32, cycle int64) {
			schedules[mi] = append(schedules[mi], sched{idx, cycle})
		}
		if err := machine.Run(func(ev vm.Event) { a.Step(ev) }); err != nil {
			log.Fatal(err)
		}
		if mi == 0 {
			for _, s := range schedules[0] {
				traceIdx = append(traceIdx, s.idx)
			}
		}
		r := a.Result()
		fmt.Printf("%-9s: %2d instructions in %2d cycles  (parallelism %.2f)\n",
			m, r.Instructions, r.Cycles, r.Parallelism())
	}

	// Print the schedule table: one row per dynamic instruction.
	fmt.Printf("\n%-28s", "dynamic instruction")
	for _, m := range models {
		fmt.Printf(" %9s", m)
	}
	fmt.Println()
	fmt.Println(strings.Repeat("-", 28+10*len(models)))
	for row := range traceIdx {
		in := &prog.Instrs[traceIdx[row]]
		fmt.Printf("%-28s", fmt.Sprintf("%3d: %s", traceIdx[row], truncate(in.String(), 22)))
		for mi := range models {
			fmt.Printf(" %9d", schedules[mi][row].cycle)
		}
		fmt.Println()
	}
	fmt.Println("\nRead a column top to bottom to see one machine's schedule.")
	fmt.Println("BASE serializes on every branch; CD frees the loop-independent tail;")
	fmt.Println("the MF machines overlap branches; SP stalls only at mispredictions;")
	fmt.Println("ORACLE is limited by data dependences alone.")
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
