// This example shows how to study a workload of your own: write it in
// mini-C, run the full pipeline, and inspect how branch prediction quality
// interacts with the speculative machine models.  It compares the same
// program under three predictors: the paper's profile-based upper bound, a
// pessimal predictor (every branch predicted wrong), and static
// backward-taken/forward-not-taken (BTFN) prediction.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"ilplimit/internal/asm"
	"ilplimit/internal/limits"
	"ilplimit/internal/minic"
	"ilplimit/internal/predict"
	"ilplimit/internal/vm"
)

// A histogram workload: data-dependent branching on input values.
const workload = `
int data[4096];
int histo[16];
int main() {
	int i, v, x;
	x = 12345;
	for (i = 0; i < 4096; i++) {
		x = x * 1103515245 + 12345;
		v = (x >> 16) & 15;
		data[i] = v;
	}
	for (i = 0; i < 4096; i++) {
		v = data[i];
		if (v < 8) {
			if (v < 4) histo[v]++;
			else histo[v] += 2;
		} else {
			histo[v] += 3;
		}
	}
	v = 0;
	for (i = 0; i < 16; i++) v += histo[i];
	print(v);
	return 0;
}
`

func main() {
	asmText, err := minic.Compile(workload)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(asmText)
	if err != nil {
		log.Fatal(err)
	}
	machine := vm.NewSized(prog, 1<<16)

	// Profile-based predictions (the paper's method).
	prof := predict.NewProfile(prog)
	if err := machine.Run(prof.Record); err != nil {
		log.Fatal(err)
	}
	profiled := prof.Predictor()

	// Pessimal: predict the opposite of the profile majority.
	worst := map[int]bool{}
	// BTFN: backward branches taken, forward not taken.
	btfn := map[int]bool{}
	for i := range prog.Instrs {
		in := &prog.Instrs[i]
		if in.Op.IsCondBranch() {
			worst[i] = !profiled.PredictsTaken(i)
			btfn[i] = in.Target <= i
		}
	}

	predictors := []struct {
		name string
		p    *predict.Predictor
	}{
		{"profile (paper)", profiled},
		{"BTFN", predict.NewStaticPredictor(prog, btfn)},
		{"pessimal", predict.NewStaticPredictor(prog, worst)},
	}

	specModels := []limits.Model{limits.SP, limits.SPCD, limits.SPCDMF}
	fmt.Printf("%-16s", "predictor")
	for _, m := range specModels {
		fmt.Printf(" %10s", m)
	}
	fmt.Println()
	for _, pr := range predictors {
		st, err := limits.NewStatic(prog, pr.p)
		if err != nil {
			log.Fatal(err)
		}
		machine.Reset()
		group := limits.NewGroup(st, len(machine.Mem), specModels, true)
		if err := machine.Run(group.Visitor()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s", pr.name)
		for _, r := range group.Results() {
			fmt.Printf(" %10.2f", r.Parallelism())
		}
		fmt.Println()
	}
	fmt.Println("\nSpeculative machines degrade gracefully toward the CD machines as")
	fmt.Println("prediction quality falls; with a pessimal predictor SP approaches BASE.")
}
